open Nullrel

exception Error of string

type cell = Quoted of string | Raw of string

let parse_cells src =
  let n = String.length src in
  let rows = ref [] and row = ref [] and buf = Buffer.create 32 in
  let quoted = ref false in
  let flush_cell () =
    let c = if !quoted then Quoted (Buffer.contents buf) else Raw (Buffer.contents buf) in
    row := c :: !row;
    Buffer.clear buf;
    quoted := false
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec plain i =
    if i >= n then ()
    else
      match src.[i] with
      | ',' ->
          flush_cell ();
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' ->
          (* CRLF, CR-only line endings, and a CR at end of file all
             terminate the row *)
          flush_row ();
          plain (if i + 1 < n && src.[i + 1] = '\n' then i + 2 else i + 1)
      | '"' when Buffer.length buf = 0 && not !quoted ->
          quoted := true;
          in_quotes (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and in_quotes i =
    if i >= n then raise (Error "unterminated quoted cell")
    else
      match src.[i] with
      | '"' when i + 1 < n && src.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          in_quotes (i + 2)
      | '"' -> after_quotes (i + 1)
      | c ->
          Buffer.add_char buf c;
          in_quotes (i + 1)
  and after_quotes i =
    if i >= n then ()
    else
      match src.[i] with
      | ',' ->
          flush_cell ();
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' ->
          flush_row ();
          plain (if i + 1 < n && src.[i + 1] = '\n' then i + 2 else i + 1)
      | c -> raise (Error (Printf.sprintf "unexpected %C after closing quote" c))
  in
  plain 0;
  if Buffer.length buf > 0 || !row <> [] || !quoted then flush_row ();
  List.rev !rows

let parse src =
  List.map
    (List.map (function Quoted s | Raw s -> s))
    (parse_cells src)

let value_of_cell ?domain cell =
  match (cell, domain) with
  | Quoted s, _ -> Value.Str s
  | Raw "-", _ -> Value.Null
  | Raw s, None -> Value.of_string_guess s
  | Raw s, Some d -> (
      match d with
      | Domain.Int_range _ | Domain.Ints -> (
          match int_of_string_opt s with
          | Some i -> Value.Int i
          | None -> raise (Error (Printf.sprintf "expected an integer, got %S" s)))
      | Domain.Floats -> (
          match float_of_string_opt s with
          | Some f -> Value.Float f
          | None -> raise (Error (Printf.sprintf "expected a float, got %S" s)))
      | Domain.Bools -> (
          match bool_of_string_opt s with
          | Some b -> Value.Bool b
          | None -> raise (Error (Printf.sprintf "expected a bool, got %S" s)))
      | Domain.Enum _ | Domain.Strings -> Value.Str s)

let read_string ?schema src =
  match parse_cells src with
  | [] -> raise (Error "empty CSV: missing header")
  | header :: body ->
      let attrs =
        List.map
          (fun cell ->
            match cell with
            | Quoted s | Raw s ->
                if String.equal s "" then raise (Error "empty column name")
                else Attr.make s)
          header
      in
      let domain_of a =
        match schema with
        | None -> None
        | Some sc -> (
            match Schema.domain sc a with
            | Some d -> Some d
            | None ->
                raise
                  (Error
                     (Printf.sprintf "column %s not in schema %s" (Attr.name a)
                        (Schema.name sc))))
      in
      let domains = List.map domain_of attrs in
      let tuple_of_row cells =
        if List.length cells <> List.length attrs then
          raise
            (Error
               (Printf.sprintf "row has %d cells, header has %d"
                  (List.length cells) (List.length attrs)));
        List.fold_left2
          (fun (t, doms) a cell ->
            match doms with
            | d :: rest -> (Tuple.set t a (value_of_cell ?domain:d cell), rest)
            | [] -> assert false)
          (Tuple.empty, domains) attrs cells
        |> fst
      in
      (attrs, Xrel.of_list (List.map tuple_of_row body))

let read_file ?schema path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  read_string ?schema contents

let escape_cell s =
  let needs_quoting =
    String.equal s "-" = false
    && (String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
       || String.equal s "")
  in
  if String.exists (fun c -> c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else if needs_quoting then "\"" ^ s ^ "\""
  else s

let cell_of_value = function
  | Value.Null -> "-"
  | Value.Str s when String.equal s "-" -> "\"-\""
  | v -> escape_cell (Value.to_string v)

let write_string attrs x =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat "," (List.map (fun a -> escape_cell (Attr.name a)) attrs));
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun a -> cell_of_value (Tuple.get r a)) attrs));
      Buffer.add_char buf '\n')
    (Xrel.to_list x);
  Buffer.contents buf

let write_file path attrs x =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write_string attrs x))
