open Nullrel
module String_map = Map.Make (String)

(* Each entry carries a monotonically increasing data version. Any
   write to the relation bumps it; collected statistics are stamped
   with the version current at collection time and count as fresh only
   while the two agree. WAL replay applies the recorded statement
   deltas through {!apply_delta} like the live DML path, so recovery
   can never resurrect stale stats — replaying a record invalidates
   them by construction.

   The subsumption index is lazy and tied to the entry. A {e wholesale}
   write ([.load], {!set_relation}) builds a fresh (unforced) one; the
   incremental DML path ({!apply_delta}) instead {e advances} the
   index by the statement's net delta, so the probe tables survive
   across statements and the per-statement cost stays bounded by the
   delta, not the relation. *)

(* A declared secondary (equi-probe) index, packed existentially so
   hash and range implementations ride the same entry slot. *)
type packed = Packed : (module Index_intf.S with type t = 'a) * 'a -> packed

type sec = { s_kind : string; s_attrs : Attr.Set.t; s_idx : packed }

type entry = {
  e_schema : Schema.t;
  e_x : Xrel.t;
  e_version : int;
  e_stats : (int * Stats.table) option;  (** (version stamp, summary) *)
  e_index : Subsume_index.t Lazy.t;
  e_sec : sec list;  (** Declaration order. *)
}

type t = {
  c_rels : entry String_map.t;
  c_defs : Constr.def list;  (** Declaration order. *)
  c_unverified : string list;
      (** Constraints whose last full verification predates the data
          (restored from a stale checkpoint, or the relation was
          replaced wholesale). *)
}

exception Violation of Schema.violation list

let empty = { c_rels = String_map.empty; c_defs = []; c_unverified = [] }
let index_of x = lazy (Subsume_index.build (Xrel.rep x))

(* ---------------------- secondary indexes --------------------- *)

let index_module kind : (module Index_intf.S) option =
  match kind with
  | "hash" -> Some (module Hash_index.Equi)
  | "range" -> Some (module Range_index.Equi)
  | _ -> None

let index_kinds = [ "hash"; "range" ]

let packed_probe (Packed ((module I), idx)) t = I.probe idx t
let packed_cardinal (Packed ((module I), idx)) = I.cardinal idx
let packed_dump (Packed ((module I), idx)) ~pos = I.dump idx ~pos

let packed_advance ~added ~removed (Packed ((module I), idx)) =
  Packed ((module I), I.advance idx ~added ~removed)

(* Rebuild the declared indexes after a wholesale replacement; a
   declaration whose attributes fell out of the schema (or whose kind
   can no longer index them) is silently dropped — the declaration is
   an acceleration, never a source of truth. *)
let rebuild_secs schema x secs =
  List.filter_map
    (fun s ->
      if not (Attr.Set.subset s.s_attrs (Schema.attr_set schema)) then None
      else
        match index_module s.s_kind with
        | None -> None
        | Some (module I) -> (
            match I.build s.s_attrs x with
            | idx -> Some { s with s_idx = Packed ((module I), idx) }
            | exception _ -> None))
    secs

(* A wholesale replacement of a relation (shell [.load] over an existing
   name) voids the verification of every constraint involving it; the
   incremental DML path goes through {!set_relation} + enforcement and
   stays verified. *)
let mark_unverified cat name =
  let stale =
    List.filter_map
      (fun def ->
        if
          List.exists (String.equal name) (Constr.relations def)
          && not (List.mem (Constr.name def) cat.c_unverified)
        then Some (Constr.name def)
        else None)
      cat.c_defs
  in
  if stale = [] then cat
  else { cat with c_unverified = cat.c_unverified @ stale }

let add_entry cat schema x =
  let name = Schema.name schema in
  let entry =
    match String_map.find_opt name cat.c_rels with
    | Some e ->
        {
          e with
          e_schema = schema;
          e_x = x;
          e_version = e.e_version + 1;
          e_index = index_of x;
          e_sec = rebuild_secs schema x e.e_sec;
        }
    | None ->
        {
          e_schema = schema;
          e_x = x;
          e_version = 0;
          e_stats = None;
          e_index = index_of x;
          e_sec = [];
        }
  in
  { cat with c_rels = String_map.add name entry cat.c_rels }

let add cat schema x =
  match Schema.check schema x with
  | [] -> mark_unverified (add_entry cat schema x) (Schema.name schema)
  | violations -> raise (Violation violations)

let add_unchecked cat schema x =
  let name = Schema.name schema in
  mark_unverified
    {
      cat with
      c_rels =
        String_map.add name
          {
            e_schema = schema;
            e_x = x;
            e_version = 0;
            e_stats = None;
            e_index = index_of x;
            e_sec = [];
          }
          cat.c_rels;
    }
    name

let find cat name =
  Option.map
    (fun e -> (e.e_schema, e.e_x))
    (String_map.find_opt name cat.c_rels)

let get cat name =
  let e = String_map.find name cat.c_rels in
  (e.e_schema, e.e_x)

let relation cat name = snd (get cat name)
let schema cat name = fst (get cat name)
let names cat = List.map fst (String_map.bindings cat.c_rels)
let mem cat name = String_map.mem name cat.c_rels

let remove cat name =
  { cat with c_rels = String_map.remove name cat.c_rels }

let set_relation cat name x =
  let e = String_map.find name cat.c_rels in
  (* A write of the identical relation is a no-op: keep the entry —
     and with it the memoized subsumption index, the declared
     secondary indexes and the statistics stamp — instead of
     invalidating them all for nothing. *)
  if Xrel.equal x e.e_x then cat
  else
    match Schema.check e.e_schema x with
    | [] -> add_entry cat e.e_schema x
    | violations -> raise (Violation violations)

(* ---------------------- incremental DML ----------------------- *)

(* [apply_delta] is the DML-path counterpart of {!set_relation}: it
   maintains the minimal representation by the insert discipline of
   Section 7 — probe, admit, evict the newly-subsumed — in one bounded
   pass over the statement delta, never re-minimizing the relation.
   Deletions need no repair at all: removing elements from an antichain
   leaves an antichain. The entry's subsumption index and every
   declared secondary index are advanced by the same net delta, so
   they survive the write. *)
let apply_delta cat name ~added ~removed =
  let e = String_map.find name cat.c_rels in
  let idx0 = Lazy.force e.e_index in
  let removed = List.filter (fun t -> Subsume_index.mem idx0 t) removed in
  let idx1 = Subsume_index.advance idx0 ~added:[] ~removed in
  let key = Schema.key e.e_schema in
  let idx2, admitted, evicted =
    List.fold_left
      (fun (idx, adm, ev) t ->
        if Tuple.is_null_tuple t || Subsume_index.subsuming_exists idx t then
          (idx, adm, ev)
        else begin
          (* Incremental integrity: domains and entity integrity are
             per-tuple; key uniqueness is one probe of the key
             restriction after the eviction pass (the index counts the
             live tuples agreeing with [t] on the key, [t] included). *)
          (match Schema.check_tuple e.e_schema t with
          | [] -> ()
          | vs -> raise (Violation vs));
          let dead = Subsume_index.subsumed_within idx t in
          let idx = Subsume_index.advance idx ~added:[ t ] ~removed:dead in
          if (not (Attr.Set.is_empty key)) && Tuple.is_total_on key t then begin
            let kr = Tuple.restrict t key in
            if Subsume_index.count_at idx kr > 1 then
              raise (Violation [ Schema.Duplicate_key kr ])
          end;
          ( idx,
            Tuple.Set.add t adm,
            List.fold_left (fun s d -> Tuple.Set.add d s) ev dead )
        end)
      (idx1, Tuple.Set.empty, Tuple.Set.empty)
      added
  in
  let net_added = Tuple.Set.diff admitted evicted in
  let net_removed =
    Tuple.Set.union (Tuple.Set.of_list removed) (Tuple.Set.diff evicted admitted)
  in
  if Tuple.Set.is_empty net_added && Tuple.Set.is_empty net_removed then
    (cat, (Tuple.Set.empty, Tuple.Set.empty))
  else begin
    (* Patch the persistent set by the net delta — O(|delta| log n) —
       instead of rebuilding it from the index, which would put an
       O(n) term back into every statement. The index's live set and
       this rep stay equal by construction: both apply exactly
       [net_added] / [net_removed] to the same previous antichain. *)
    let x =
      Xrel.unsafe_of_minimal
        (Tuple.Set.fold Relation.add net_added
           (Tuple.Set.fold Relation.remove net_removed (Xrel.rep e.e_x)))
    in
    let al = Tuple.Set.elements net_added
    and rl = Tuple.Set.elements net_removed in
    let entry =
      {
        e with
        e_x = x;
        e_version = e.e_version + 1;
        e_index = Lazy.from_val idx2;
        e_sec =
          List.map
            (fun s -> { s with s_idx = packed_advance ~added:al ~removed:rl s.s_idx })
            e.e_sec;
      }
    in
    ( { cat with c_rels = String_map.add name entry cat.c_rels },
      (net_added, net_removed) )
  end

let to_db cat =
  List.map
    (fun (name, e) -> (name, (e.e_schema, e.e_x)))
    (String_map.bindings cat.c_rels)

let probe_index cat name =
  Option.map
    (fun e -> Lazy.force e.e_index)
    (String_map.find_opt name cat.c_rels)

(* ------------------ secondary-index catalog ------------------- *)

let find_sec e ~kind attrs =
  List.find_opt
    (fun s -> String.equal s.s_kind kind && Attr.Set.equal s.s_attrs attrs)
    e.e_sec

let create_index cat name ~kind attrs =
  let e =
    match String_map.find_opt name cat.c_rels with
    | Some e -> e
    | None -> Exec_error.bad_inputf "create index: unknown relation %s" name
  in
  if Attr.Set.is_empty attrs then
    Exec_error.bad_input "create index: empty attribute set";
  Attr.Set.iter
    (fun a ->
      if not (Schema.mem e.e_schema a) then
        Exec_error.bad_inputf "create index: %s is not a column of %s"
          (Attr.name a) name)
    attrs;
  match index_module kind with
  | None -> Exec_error.bad_inputf "create index: unknown kind %s" kind
  | Some (module I) ->
      if find_sec e ~kind attrs <> None then cat
      else begin
        let sec =
          { s_kind = kind; s_attrs = attrs; s_idx = Packed ((module I), I.build attrs e.e_x) }
        in
        {
          cat with
          c_rels =
            String_map.add name { e with e_sec = e.e_sec @ [ sec ] } cat.c_rels;
        }
      end

let drop_index cat name ~kind attrs =
  match String_map.find_opt name cat.c_rels with
  | None -> cat
  | Some e ->
      let secs =
        List.filter
          (fun s ->
            not (String.equal s.s_kind kind && Attr.Set.equal s.s_attrs attrs))
          e.e_sec
      in
      { cat with c_rels = String_map.add name { e with e_sec = secs } cat.c_rels }

let indexes cat name =
  match String_map.find_opt name cat.c_rels with
  | None -> []
  | Some e ->
      List.map (fun s -> (s.s_kind, s.s_attrs, packed_cardinal s.s_idx)) e.e_sec

let all_indexes cat =
  List.concat_map
    (fun (name, e) ->
      List.map (fun s -> (name, s.s_kind, s.s_attrs)) e.e_sec)
    (String_map.bindings cat.c_rels)

let equi_probe cat name attrs =
  match String_map.find_opt name cat.c_rels with
  | None -> None
  | Some e ->
      List.find_map
        (fun s ->
          if Attr.Set.equal s.s_attrs attrs then
            Some (fun t -> packed_probe s.s_idx t)
          else None)
        e.e_sec

let has_equi cat name attrs = equi_probe cat name attrs <> None

let dump_index cat name ~kind attrs =
  match String_map.find_opt name cat.c_rels with
  | None -> None
  | Some e -> (
      match find_sec e ~kind attrs with
      | None -> None
      | Some s ->
          let _, posmap =
            List.fold_left
              (fun (i, m) t -> (i + 1, Tuple.Map.add t i m))
              (0, Tuple.Map.empty) (Xrel.to_list e.e_x)
          in
          packed_dump s.s_idx ~pos:(fun t -> Tuple.Map.find_opt t posmap))

let restore_index cat name ~kind attrs ~lines =
  match String_map.find_opt name cat.c_rels with
  | None -> (cat, false)
  | Some e ->
      if
        (not (Attr.Set.subset attrs (Schema.attr_set e.e_schema)))
        || find_sec e ~kind attrs <> None
      then (cat, false)
      else (
        match index_module kind with
        | None -> (cat, false)
        | Some (module I) -> (
            let attach idx attached =
              let sec = { s_kind = kind; s_attrs = attrs; s_idx = Packed ((module I), idx) } in
              ( {
                  cat with
                  c_rels =
                    String_map.add name
                      { e with e_sec = e.e_sec @ [ sec ] }
                      cat.c_rels;
                },
                attached )
            in
            let rebuilt () =
              match I.build attrs e.e_x with
              | idx -> attach idx false
              | exception _ -> (cat, false)
            in
            match lines with
            | None -> rebuilt ()
            | Some ls -> (
                let arr = Array.of_list (Xrel.to_list e.e_x) in
                match I.restore attrs arr ls with
                | Some idx -> attach idx true
                | None -> rebuilt ())))

(* ------------------------- statistics ------------------------- *)

type stats_status = Fresh of Stats.table | Stale of Stats.table | Missing

let stats_status cat name =
  match String_map.find_opt name cat.c_rels with
  | None | Some { e_stats = None; _ } -> Missing
  | Some { e_stats = Some (stamp, t); e_version; _ } ->
      if stamp = e_version then Fresh t else Stale t

let stats cat name =
  match stats_status cat name with Fresh t -> Some t | Stale _ | Missing -> None

let set_stats cat name t =
  match String_map.find_opt name cat.c_rels with
  | None -> cat
  | Some e ->
      {
        cat with
        c_rels =
          String_map.add name
            { e with e_stats = Some (e.e_version, t) }
            cat.c_rels;
      }

let clear_stats cat name =
  match String_map.find_opt name cat.c_rels with
  | None -> cat
  | Some e ->
      { cat with c_rels = String_map.add name { e with e_stats = None } cat.c_rels }

(* ------------------------- constraints ------------------------ *)

let constraints cat = cat.c_defs

let constraint_def cat name =
  List.find_opt (fun d -> String.equal (Constr.name d) name) cat.c_defs

let unverified_constraints cat = cat.c_unverified

let enforce_env cat =
  {
    Constr.lookup =
      (fun name ->
        Option.map (fun e -> e.e_x) (String_map.find_opt name cat.c_rels));
    probe = (fun name -> probe_index cat name);
    key_of =
      (fun name ->
        match String_map.find_opt name cat.c_rels with
        | Some e -> Schema.key e.e_schema
        | None -> Attr.Set.empty);
  }

let enforce cat seeds = Constr.enforce (enforce_env cat) cat.c_defs seeds

let verify_constraint cat def = Constr.verify (enforce_env cat) def

let attach_constraint ?(verified = true) cat def =
  let n = Constr.name def in
  let defs =
    List.filter (fun d -> not (String.equal (Constr.name d) n)) cat.c_defs
    @ [ def ]
  in
  let unverified = List.filter (fun m -> not (String.equal m n)) cat.c_unverified in
  {
    cat with
    c_defs = defs;
    c_unverified = (if verified then unverified else unverified @ [ n ]);
  }

let add_constraint cat def =
  (* The TLA+ [Add*Constraint] precondition: the data already satisfies
     the constraint being declared. *)
  (match verify_constraint cat def with
  | [] -> ()
  | v :: _ -> Constr.error v);
  attach_constraint ~verified:true cat def

let drop_constraint cat name =
  {
    cat with
    c_defs =
      List.filter (fun d -> not (String.equal (Constr.name d) name)) cat.c_defs;
    c_unverified =
      List.filter (fun m -> not (String.equal m name)) cat.c_unverified;
  }

let revalidate_constraints cat =
  List.fold_left
    (fun (cat, bad) name ->
      match constraint_def cat name with
      | None -> (cat, bad)
      | Some def -> (
          match verify_constraint cat def with
          | [] ->
              ( {
                  cat with
                  c_unverified =
                    List.filter
                      (fun m -> not (String.equal m name))
                      cat.c_unverified;
                },
                bad )
          | violations -> (cat, bad @ List.map (fun v -> (name, v)) violations)))
    (cat, []) cat.c_unverified

(* --------------------- referential checks --------------------- *)

type reference_violation = {
  relation : string;
  fk : Schema.foreign_key;
  tuple : Tuple.t;
}

let pp_reference_violation ppf v =
  Format.fprintf ppf "%s: tuple %a references no tuple of %s" v.relation
    Tuple.pp v.tuple v.fk.Schema.fk_target

(* A total reference (local attrs all bound) must be matched by a target
   tuple carrying the referenced values; partial references assert
   nothing. *)
let fk_violations cat rel_name fk x =
  let target = find cat fk.Schema.fk_target in
  let reference_of r =
    List.fold_left
      (fun acc (local, referenced) ->
        match acc with
        | None -> None
        | Some t -> (
            match Tuple.get r local with
            | Value.Null -> None
            | v -> Some (Tuple.set t referenced v)))
      (Some Tuple.empty) fk.Schema.fk_pairs
  in
  List.filter_map
    (fun r ->
      match reference_of r with
      | None -> None
      | Some reference ->
          let matched =
            match target with
            | None -> false
            | Some (_, target_x) -> Xrel.x_mem reference target_x
          in
          if matched then None else Some { relation = rel_name; fk; tuple = r })
    (Xrel.to_list x)

(* Declared foreign-key constraints take part in the advisory full-scan
   check too, so `.check` (and the model-check acceptance criterion)
   covers both the schema-level and the declared references. *)
let check_references cat =
  let schema_level =
    String_map.fold
      (fun rel_name e acc ->
        List.concat_map
          (fun fk -> fk_violations cat rel_name fk e.e_x)
          (Schema.foreign_keys e.e_schema)
        @ acc)
      cat.c_rels []
  in
  let declared =
    List.concat_map
      (function
        | Constr.Foreign_key { rel; target; pairs; _ } -> (
            match String_map.find_opt rel cat.c_rels with
            | None -> []
            | Some e ->
                fk_violations cat rel
                  { Schema.fk_target = target; fk_pairs = pairs }
                  e.e_x)
        | Constr.Unique _ | Constr.Not_null _ -> [])
      cat.c_defs
  in
  schema_level @ declared
