open Nullrel
module String_map = Map.Make (String)

(* Each entry carries a monotonically increasing data version. Any
   write to the relation bumps it; collected statistics are stamped
   with the version current at collection time and count as fresh only
   while the two agree. WAL replay goes through {!set_relation} like
   every other mutation, so recovery can never resurrect stale stats —
   replaying a record invalidates them by construction.

   The subsumption index is lazy and tied to the entry: a write builds
   a fresh (unforced) one, so constraint probes against an unchanged
   relation are amortized O(1) across statements while a changed
   relation re-indexes at most once. *)
type entry = {
  e_schema : Schema.t;
  e_x : Xrel.t;
  e_version : int;
  e_stats : (int * Stats.table) option;  (** (version stamp, summary) *)
  e_index : Subsume_index.t Lazy.t;
}

type t = {
  c_rels : entry String_map.t;
  c_defs : Constr.def list;  (** Declaration order. *)
  c_unverified : string list;
      (** Constraints whose last full verification predates the data
          (restored from a stale checkpoint, or the relation was
          replaced wholesale). *)
}

exception Violation of Schema.violation list

let empty = { c_rels = String_map.empty; c_defs = []; c_unverified = [] }
let index_of x = lazy (Subsume_index.build (Xrel.rep x))

(* A wholesale replacement of a relation (shell [.load] over an existing
   name) voids the verification of every constraint involving it; the
   incremental DML path goes through {!set_relation} + enforcement and
   stays verified. *)
let mark_unverified cat name =
  let stale =
    List.filter_map
      (fun def ->
        if
          List.exists (String.equal name) (Constr.relations def)
          && not (List.mem (Constr.name def) cat.c_unverified)
        then Some (Constr.name def)
        else None)
      cat.c_defs
  in
  if stale = [] then cat
  else { cat with c_unverified = cat.c_unverified @ stale }

let add_entry cat schema x =
  let name = Schema.name schema in
  let entry =
    match String_map.find_opt name cat.c_rels with
    | Some e ->
        {
          e with
          e_schema = schema;
          e_x = x;
          e_version = e.e_version + 1;
          e_index = index_of x;
        }
    | None ->
        {
          e_schema = schema;
          e_x = x;
          e_version = 0;
          e_stats = None;
          e_index = index_of x;
        }
  in
  { cat with c_rels = String_map.add name entry cat.c_rels }

let add cat schema x =
  match Schema.check schema x with
  | [] -> mark_unverified (add_entry cat schema x) (Schema.name schema)
  | violations -> raise (Violation violations)

let add_unchecked cat schema x =
  let name = Schema.name schema in
  mark_unverified
    {
      cat with
      c_rels =
        String_map.add name
          {
            e_schema = schema;
            e_x = x;
            e_version = 0;
            e_stats = None;
            e_index = index_of x;
          }
          cat.c_rels;
    }
    name

let find cat name =
  Option.map
    (fun e -> (e.e_schema, e.e_x))
    (String_map.find_opt name cat.c_rels)

let get cat name =
  let e = String_map.find name cat.c_rels in
  (e.e_schema, e.e_x)

let relation cat name = snd (get cat name)
let schema cat name = fst (get cat name)
let names cat = List.map fst (String_map.bindings cat.c_rels)
let mem cat name = String_map.mem name cat.c_rels

let remove cat name =
  { cat with c_rels = String_map.remove name cat.c_rels }

let set_relation cat name x =
  let e = String_map.find name cat.c_rels in
  match Schema.check e.e_schema x with
  | [] -> add_entry cat e.e_schema x
  | violations -> raise (Violation violations)

let to_db cat =
  List.map
    (fun (name, e) -> (name, (e.e_schema, e.e_x)))
    (String_map.bindings cat.c_rels)

let probe_index cat name =
  Option.map
    (fun e -> Lazy.force e.e_index)
    (String_map.find_opt name cat.c_rels)

(* ------------------------- statistics ------------------------- *)

type stats_status = Fresh of Stats.table | Stale of Stats.table | Missing

let stats_status cat name =
  match String_map.find_opt name cat.c_rels with
  | None | Some { e_stats = None; _ } -> Missing
  | Some { e_stats = Some (stamp, t); e_version; _ } ->
      if stamp = e_version then Fresh t else Stale t

let stats cat name =
  match stats_status cat name with Fresh t -> Some t | Stale _ | Missing -> None

let set_stats cat name t =
  match String_map.find_opt name cat.c_rels with
  | None -> cat
  | Some e ->
      {
        cat with
        c_rels =
          String_map.add name
            { e with e_stats = Some (e.e_version, t) }
            cat.c_rels;
      }

let clear_stats cat name =
  match String_map.find_opt name cat.c_rels with
  | None -> cat
  | Some e ->
      { cat with c_rels = String_map.add name { e with e_stats = None } cat.c_rels }

(* ------------------------- constraints ------------------------ *)

let constraints cat = cat.c_defs

let constraint_def cat name =
  List.find_opt (fun d -> String.equal (Constr.name d) name) cat.c_defs

let unverified_constraints cat = cat.c_unverified

let enforce_env cat =
  {
    Constr.lookup =
      (fun name ->
        Option.map (fun e -> e.e_x) (String_map.find_opt name cat.c_rels));
    probe = (fun name -> probe_index cat name);
    key_of =
      (fun name ->
        match String_map.find_opt name cat.c_rels with
        | Some e -> Schema.key e.e_schema
        | None -> Attr.Set.empty);
  }

let enforce cat seeds = Constr.enforce (enforce_env cat) cat.c_defs seeds

let verify_constraint cat def = Constr.verify (enforce_env cat) def

let attach_constraint ?(verified = true) cat def =
  let n = Constr.name def in
  let defs =
    List.filter (fun d -> not (String.equal (Constr.name d) n)) cat.c_defs
    @ [ def ]
  in
  let unverified = List.filter (fun m -> not (String.equal m n)) cat.c_unverified in
  {
    cat with
    c_defs = defs;
    c_unverified = (if verified then unverified else unverified @ [ n ]);
  }

let add_constraint cat def =
  (* The TLA+ [Add*Constraint] precondition: the data already satisfies
     the constraint being declared. *)
  (match verify_constraint cat def with
  | [] -> ()
  | v :: _ -> Constr.error v);
  attach_constraint ~verified:true cat def

let drop_constraint cat name =
  {
    cat with
    c_defs =
      List.filter (fun d -> not (String.equal (Constr.name d) name)) cat.c_defs;
    c_unverified =
      List.filter (fun m -> not (String.equal m name)) cat.c_unverified;
  }

let revalidate_constraints cat =
  List.fold_left
    (fun (cat, bad) name ->
      match constraint_def cat name with
      | None -> (cat, bad)
      | Some def -> (
          match verify_constraint cat def with
          | [] ->
              ( {
                  cat with
                  c_unverified =
                    List.filter
                      (fun m -> not (String.equal m name))
                      cat.c_unverified;
                },
                bad )
          | violations -> (cat, bad @ List.map (fun v -> (name, v)) violations)))
    (cat, []) cat.c_unverified

(* --------------------- referential checks --------------------- *)

type reference_violation = {
  relation : string;
  fk : Schema.foreign_key;
  tuple : Tuple.t;
}

let pp_reference_violation ppf v =
  Format.fprintf ppf "%s: tuple %a references no tuple of %s" v.relation
    Tuple.pp v.tuple v.fk.Schema.fk_target

(* A total reference (local attrs all bound) must be matched by a target
   tuple carrying the referenced values; partial references assert
   nothing. *)
let fk_violations cat rel_name fk x =
  let target = find cat fk.Schema.fk_target in
  let reference_of r =
    List.fold_left
      (fun acc (local, referenced) ->
        match acc with
        | None -> None
        | Some t -> (
            match Tuple.get r local with
            | Value.Null -> None
            | v -> Some (Tuple.set t referenced v)))
      (Some Tuple.empty) fk.Schema.fk_pairs
  in
  List.filter_map
    (fun r ->
      match reference_of r with
      | None -> None
      | Some reference ->
          let matched =
            match target with
            | None -> false
            | Some (_, target_x) -> Xrel.x_mem reference target_x
          in
          if matched then None else Some { relation = rel_name; fk; tuple = r })
    (Xrel.to_list x)

(* Declared foreign-key constraints take part in the advisory full-scan
   check too, so `.check` (and the model-check acceptance criterion)
   covers both the schema-level and the declared references. *)
let check_references cat =
  let schema_level =
    String_map.fold
      (fun rel_name e acc ->
        List.concat_map
          (fun fk -> fk_violations cat rel_name fk e.e_x)
          (Schema.foreign_keys e.e_schema)
        @ acc)
      cat.c_rels []
  in
  let declared =
    List.concat_map
      (function
        | Constr.Foreign_key { rel; target; pairs; _ } -> (
            match String_map.find_opt rel cat.c_rels with
            | None -> []
            | Some e ->
                fk_violations cat rel
                  { Schema.fk_target = target; fk_pairs = pairs }
                  e.e_x)
        | Constr.Unique _ | Constr.Not_null _ -> [])
      cat.c_defs
  in
  schema_level @ declared
