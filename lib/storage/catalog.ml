open Nullrel
module String_map = Map.Make (String)

(* Each entry carries a monotonically increasing data version. Any
   write to the relation bumps it; collected statistics are stamped
   with the version current at collection time and count as fresh only
   while the two agree. WAL replay goes through {!set_relation} like
   every other mutation, so recovery can never resurrect stale stats —
   replaying a record invalidates them by construction. *)
type entry = {
  e_schema : Schema.t;
  e_x : Xrel.t;
  e_version : int;
  e_stats : (int * Stats.table) option;  (** (version stamp, summary) *)
}

type t = entry String_map.t

exception Violation of Schema.violation list

let empty = String_map.empty

let add cat schema x =
  match Schema.check schema x with
  | [] ->
      let name = Schema.name schema in
      let entry =
        match String_map.find_opt name cat with
        | Some e -> { e with e_schema = schema; e_x = x; e_version = e.e_version + 1 }
        | None -> { e_schema = schema; e_x = x; e_version = 0; e_stats = None }
      in
      String_map.add name entry cat
  | violations -> raise (Violation violations)

let add_unchecked cat schema x =
  String_map.add (Schema.name schema)
    { e_schema = schema; e_x = x; e_version = 0; e_stats = None }
    cat

let find cat name =
  Option.map
    (fun e -> (e.e_schema, e.e_x))
    (String_map.find_opt name cat)

let get cat name =
  let e = String_map.find name cat in
  (e.e_schema, e.e_x)

let relation cat name = snd (get cat name)
let schema cat name = fst (get cat name)
let names cat = List.map fst (String_map.bindings cat)
let mem cat name = String_map.mem name cat
let remove cat name = String_map.remove name cat

let set_relation cat name x =
  let schema, _ = get cat name in
  add cat schema x

let to_db cat =
  List.map (fun (name, e) -> (name, (e.e_schema, e.e_x))) (String_map.bindings cat)

(* ------------------------- statistics ------------------------- *)

type stats_status = Fresh of Stats.table | Stale of Stats.table | Missing

let stats_status cat name =
  match String_map.find_opt name cat with
  | None | Some { e_stats = None; _ } -> Missing
  | Some { e_stats = Some (stamp, t); e_version; _ } ->
      if stamp = e_version then Fresh t else Stale t

let stats cat name =
  match stats_status cat name with Fresh t -> Some t | Stale _ | Missing -> None

let set_stats cat name t =
  match String_map.find_opt name cat with
  | None -> cat
  | Some e ->
      String_map.add name { e with e_stats = Some (e.e_version, t) } cat

let clear_stats cat name =
  match String_map.find_opt name cat with
  | None -> cat
  | Some e -> String_map.add name { e with e_stats = None } cat

type reference_violation = {
  relation : string;
  fk : Schema.foreign_key;
  tuple : Tuple.t;
}

let pp_reference_violation ppf v =
  Format.fprintf ppf "%s: tuple %a references no tuple of %s" v.relation
    Tuple.pp v.tuple v.fk.Schema.fk_target

(* A total reference (local attrs all bound) must be matched by a target
   tuple carrying the referenced values; partial references assert
   nothing. *)
let fk_violations cat rel_name fk x =
  let target = find cat fk.Schema.fk_target in
  let reference_of r =
    List.fold_left
      (fun acc (local, referenced) ->
        match acc with
        | None -> None
        | Some t -> (
            match Tuple.get r local with
            | Value.Null -> None
            | v -> Some (Tuple.set t referenced v)))
      (Some Tuple.empty) fk.Schema.fk_pairs
  in
  List.filter_map
    (fun r ->
      match reference_of r with
      | None -> None
      | Some reference ->
          let matched =
            match target with
            | None -> false
            | Some (_, target_x) -> Xrel.x_mem reference target_x
          in
          if matched then None else Some { relation = rel_name; fk; tuple = r })
    (Xrel.to_list x)

let check_references cat =
  String_map.fold
    (fun rel_name e acc ->
      List.concat_map
        (fun fk -> fk_violations cat rel_name fk e.e_x)
        (Schema.foreign_keys e.e_schema)
      @ acc)
    cat []
