(** Physical join operators.

    {!Nullrel.Algebra.equijoin} is the textbook nested loop —
    O(|R1| x |R2|). This module provides a hash-partitioned
    implementation of the same operator: only X-total tuples participate
    (Section 5's definition), so indexing one operand by its
    X-restriction makes each probe cheap; expected cost
    O(|R1| + |R2| + |output|). Agreement with the logical operator is
    property-tested; the speedup is benchmark E13.

    The build side goes through an {!Index_intf.S} implementation
    (default {!Hash_index.Equi}); the probe side can fan out over the
    {!Par.Pool} domains — probe chunks against the shared read-only
    index, per-chunk partial results merged by set union, so the
    result is identical under every strategy and pool size. Governance
    follows the {!Nullrel.Kernel} scheme: sequential probes tick
    inline, parallel chunks count ticks into an atomic drained by the
    coordinator. *)

open Nullrel

val hash_equijoin :
  ?strategy:Kernel.strategy ->
  ?index:(module Index_intf.S) ->
  Attr.Set.t ->
  Xrel.t ->
  Xrel.t ->
  Xrel.t
(** [hash_equijoin x r1 r2] = [Algebra.equijoin x r1 r2], computed by
    probing an index on [r2] with the tuples of [r1]. [strategy]
    defaults to [Auto] (parallel from {!Kernel.parallel_cutover}
    probe tuples when the pool has more than one domain); [Sequential]
    and [Indexed] both mean "probe on the calling domain". *)

val hash_union_join :
  ?strategy:Kernel.strategy ->
  ?index:(module Index_intf.S) ->
  Attr.Set.t ->
  Xrel.t ->
  Xrel.t ->
  Xrel.t
(** The union-join (outer join) on top of {!hash_equijoin}. *)

val probe_equijoin :
  ?strategy:Kernel.strategy ->
  probe:(Tuple.t -> Tuple.t list) ->
  Xrel.t ->
  Xrel.t
(** The same probe loop against a {e pre-built} equality probe — a
    declared secondary index served by {!Catalog.equi_probe} — so the
    build side is never materialized: cost O(|r1| + |output|) instead
    of O(|r1| + |r2| + |output|). The probe must return, for each
    X-total tuple, exactly the indexed tuples matching it on the join
    attributes (and [[]] for tuples not total on them) — then the
    result equals [Algebra.equijoin]. [strategy] defaults to [Indexed]
    (sequential probes on the calling domain). *)
