(** A compact binary format for relations.

    CSV is the interchange format; this is the storage format: an
    attribute dictionary written once, then one record per tuple listing
    only its non-null bindings (the canonical form pays off on sparse
    data — nulls occupy zero bytes). Integers are zigzag-LEB128
    varints; floats are 8-byte IEEE bit patterns; strings and the
    dictionary are length-prefixed.

    Layout:
    {v
    magic "NRX2"
    attr-count:varint  (attr-name:str)*
    tuple-count:varint
    tuple ::= binding-count:varint (attr-index:varint value)*
    value ::= 0x00 int:zigzag-varint
            | 0x01 float:8 bytes LE
            | 0x02 str:varint-len bytes
            | 0x03 bool:1 byte
    crc32:4 bytes LE   (of every preceding byte)
    v}

    The trailing CRC-32 makes every truncation or bit flip a detected
    {!Corrupt}, never a silently wrong relation: [decode] rejects any
    input that is not byte-exact. *)

open Nullrel

exception Corrupt of string
(** Bad magic, truncated input, unknown tags, out-of-range dictionary
    references, checksum mismatches. *)

val encode : Xrel.t -> string
val decode : string -> Xrel.t
(** [decode (encode x) = x]; decoding re-canonicalizes, so hand-made
    inputs with redundant tuples still produce a valid x-relation. *)

val write_file : string -> Xrel.t -> unit
val read_file : string -> Xrel.t
