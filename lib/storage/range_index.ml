open Nullrel

type t = { attr : Attr.t; sorted : Tuple.t array }

let value_cmp v w =
  match Value.compare3 v w with
  | Some c -> c
  | None -> Exec_error.bad_input "Range_index: null value in index"

let build attr x =
  let total =
    List.filter
      (fun r -> not (Value.is_null (Tuple.get r attr)))
      (Xrel.to_list x)
  in
  let sorted = Array.of_list total in
  Array.sort
    (fun r1 r2 -> value_cmp (Tuple.get r1 attr) (Tuple.get r2 attr))
    sorted;
  { attr; sorted }

let attr idx = idx.attr
let cardinal idx = Array.length idx.sorted

(* First position whose value is >= k (with [strict], > k). *)
let bound idx ~strict k =
  let matches v =
    let c = value_cmp v k in
    if strict then c > 0 else c >= 0
  in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if matches (Tuple.get idx.sorted.(mid) idx.attr) then go lo mid
      else go (mid + 1) hi
  in
  go 0 (Array.length idx.sorted)

let slice idx lo hi =
  let rec collect i acc =
    if i < lo then acc else collect (i - 1) (idx.sorted.(i) :: acc)
  in
  (* A subset of a minimal representation is minimal. *)
  Xrel.unsafe_of_minimal (Relation.of_list (collect (hi - 1) []))

let select idx cmp k =
  if Value.is_null k then
    Exec_error.bad_input "Range_index.select: the constant must not be ni";
  let n = Array.length idx.sorted in
  let lb = bound idx ~strict:false k in
  let ub = bound idx ~strict:true k in
  match cmp with
  | Predicate.Eq -> slice idx lb ub
  | Predicate.Lt -> slice idx 0 lb
  | Predicate.Le -> slice idx 0 ub
  | Predicate.Gt -> slice idx ub n
  | Predicate.Ge -> slice idx lb n
  | Predicate.Neq -> Xrel.union (slice idx 0 lb) (slice idx ub n)

(* The sorted array doubles as an equality-probe index when the join
   key is a single attribute: an [Eq] probe is two binary searches. *)
module Equi : Index_intf.S = struct
  type nonrec t = t

  let kind = "range"

  let build x rel =
    match Attr.Set.elements x with
    | [ a ] -> build a rel
    | _ ->
        Exec_error.bad_input
          "Range_index.Equi: the join key must be a single attribute"

  let cardinal = cardinal

  let probe idx r =
    let v = Tuple.get r idx.attr in
    if Value.is_null v then []
    else begin
      let lb = bound idx ~strict:false v in
      let ub = bound idx ~strict:true v in
      let rec collect i acc =
        if i < lb then acc else collect (i - 1) (idx.sorted.(i) :: acc)
      in
      collect (ub - 1) []
    end
end

let range idx ?lo ?hi () =
  let n = Array.length idx.sorted in
  let from = match lo with Some v -> bound idx ~strict:false v | None -> 0 in
  let until = match hi with Some v -> bound idx ~strict:true v | None -> n in
  slice idx from (max from until)
