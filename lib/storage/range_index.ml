open Nullrel

type t = { attr : Attr.t; sorted : Tuple.t array }

let value_cmp v w =
  match Value.compare3 v w with
  | Some c -> c
  | None -> Exec_error.bad_input "Range_index: null value in index"

let build attr x =
  let total =
    List.filter
      (fun r -> not (Value.is_null (Tuple.get r attr)))
      (Xrel.to_list x)
  in
  let sorted = Array.of_list total in
  Array.sort
    (fun r1 r2 -> value_cmp (Tuple.get r1 attr) (Tuple.get r2 attr))
    sorted;
  { attr; sorted }

let attr idx = idx.attr
let cardinal idx = Array.length idx.sorted

(* First position whose value is >= k (with [strict], > k). *)
let bound idx ~strict k =
  let matches v =
    let c = value_cmp v k in
    if strict then c > 0 else c >= 0
  in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if matches (Tuple.get idx.sorted.(mid) idx.attr) then go lo mid
      else go (mid + 1) hi
  in
  go 0 (Array.length idx.sorted)

let slice idx lo hi =
  let rec collect i acc =
    if i < lo then acc else collect (i - 1) (idx.sorted.(i) :: acc)
  in
  (* A subset of a minimal representation is minimal. *)
  Xrel.unsafe_of_minimal (Relation.of_list (collect (hi - 1) []))

let select idx cmp k =
  if Value.is_null k then
    Exec_error.bad_input "Range_index.select: the constant must not be ni";
  let n = Array.length idx.sorted in
  let lb = bound idx ~strict:false k in
  let ub = bound idx ~strict:true k in
  match cmp with
  | Predicate.Eq -> slice idx lb ub
  | Predicate.Lt -> slice idx 0 lb
  | Predicate.Le -> slice idx 0 ub
  | Predicate.Gt -> slice idx ub n
  | Predicate.Ge -> slice idx lb n
  | Predicate.Neq -> Xrel.union (slice idx 0 lb) (slice idx ub n)

(* The sorted array doubles as an equality-probe index when the join
   key is a single attribute: an [Eq] probe is two binary searches.
   Persistent under DML: the sorted base is immutable and a small
   functional overlay carries a statement's delta; compaction merges
   the (sorted) overlay into the base in linear time rather than
   re-sorting. *)
module Equi : Index_intf.S = struct
  type base = t

  type nonrec t = {
    b : base;
    added : Tuple.t list;  (* non-null on [b.attr], live, not in base *)
    removed : Tuple.Set.t;  (* in base, not live *)
    n : int;  (* live indexed tuples *)
  }

  let kind = "range"
  let of_base b = { b; added = []; removed = Tuple.Set.empty; n = cardinal b }

  let build x rel =
    match Attr.Set.elements x with
    | [ a ] -> of_base (build a rel)
    | _ ->
        Exec_error.bad_input
          "Range_index.Equi: the join key must be a single attribute"

  let cardinal t = t.n

  let base_probe b v =
    let lb = bound b ~strict:false v in
    let ub = bound b ~strict:true v in
    let rec collect i acc =
      if i < lb then acc else collect (i - 1) (b.sorted.(i) :: acc)
    in
    collect (ub - 1) []

  let probe t r =
    let v = Tuple.get r t.b.attr in
    if Value.is_null v then []
    else begin
      let hits = base_probe t.b v in
      let hits =
        if Tuple.Set.is_empty t.removed then hits
        else List.filter (fun u -> not (Tuple.Set.mem u t.removed)) hits
      in
      match t.added with
      | [] -> hits
      | added ->
          List.fold_left
            (fun acc u ->
              if value_cmp (Tuple.get u t.b.attr) v = 0 then u :: acc else acc)
            hits added
    end

  (* Merge the sorted overlay into the sorted base: O(n + k log k),
     never a full re-sort. *)
  let compact t =
    let a = t.b.attr in
    let extra = Array.of_list t.added in
    Array.sort (fun r1 r2 -> value_cmp (Tuple.get r1 a) (Tuple.get r2 a)) extra;
    let out = ref [] in
    let i = ref 0 and j = ref 0 in
    let nb = Array.length t.b.sorted and ne = Array.length extra in
    while !i < nb || !j < ne do
      if !i < nb && Tuple.Set.mem t.b.sorted.(!i) t.removed then incr i
      else if
        !i < nb
        && (!j >= ne
           || value_cmp (Tuple.get t.b.sorted.(!i) a) (Tuple.get extra.(!j) a)
              <= 0)
      then begin
        out := t.b.sorted.(!i) :: !out;
        incr i
      end
      else begin
        out := extra.(!j) :: !out;
        incr j
      end
    done;
    of_base { attr = a; sorted = Array.of_list (List.rev !out) }

  let compaction_slack = 16

  let is_live t u =
    (not (Tuple.Set.mem u t.removed))
    && (List.exists (Tuple.equal u) t.added
       ||
       let v = Tuple.get u t.b.attr in
       (not (Value.is_null v)) && List.exists (Tuple.equal u) (base_probe t.b v))

  let advance t ~added ~removed =
    let a = t.b.attr in
    let t =
      List.fold_left
        (fun t u ->
          if Value.is_null (Tuple.get u a) || not (is_live t u) then t
          else if List.exists (Tuple.equal u) t.added then
            {
              t with
              added = List.filter (fun v -> not (Tuple.equal v u)) t.added;
              n = t.n - 1;
            }
          else { t with removed = Tuple.Set.add u t.removed; n = t.n - 1 })
        t removed
    in
    let t =
      List.fold_left
        (fun t u ->
          if Value.is_null (Tuple.get u a) || is_live t u then t
          else if Tuple.Set.mem u t.removed then
            { t with removed = Tuple.Set.remove u t.removed; n = t.n + 1 }
          else { t with added = u :: t.added; n = t.n + 1 })
        t added
    in
    let overlay = List.length t.added + Tuple.Set.cardinal t.removed in
    if overlay > compaction_slack + int_of_float (sqrt (float_of_int t.n)) then
      compact t
    else t

  (* One line: the canonical positions in sorted order. Restoring
     resolves positions and verifies the order in O(n) — the O(n log n)
     sort is exactly what attach avoids. *)
  let dump t ~pos =
    let t =
      if t.added = [] && Tuple.Set.is_empty t.removed then t else compact t
    in
    let exception Missing in
    try
      Some
        [
          String.concat " "
            (List.map
               (fun u ->
                 match pos u with
                 | Some p -> string_of_int p
                 | None -> raise Missing)
               (Array.to_list t.b.sorted));
        ]
    with Missing -> None

  let restore x arr lines =
    match (Attr.Set.elements x, lines) with
    | [ a ], ([] | [ _ ]) -> (
        let line = match lines with [ l ] -> l | _ -> "" in
        try
          let sorted =
            Array.of_list
              (List.filter_map
                 (fun s ->
                   if s = "" then None
                   else begin
                     let p = int_of_string s in
                     if p < 0 || p >= Array.length arr then
                       failwith "position out of range";
                     let u = arr.(p) in
                     if Value.is_null (Tuple.get u a) then
                       failwith "null value in index";
                     Some u
                   end)
                 (String.split_on_char ' ' line))
          in
          for i = 1 to Array.length sorted - 1 do
            if
              value_cmp (Tuple.get sorted.(i - 1) a) (Tuple.get sorted.(i) a)
              > 0
            then failwith "positions not sorted"
          done;
          Some (of_base { attr = a; sorted })
        with Failure _ -> None)
    | _ -> None
end

let range idx ?lo ?hi () =
  let n = Array.length idx.sorted in
  let from = match lo with Some v -> bound idx ~strict:false v | None -> 0 in
  let until = match hi with Some v -> bound idx ~strict:true v | None -> n in
  slice idx from (max from until)
