(** Sorted per-attribute indexes for selections.

    [Nullrel.Algebra.select_ak] scans the whole representation. For a
    relation queried repeatedly on the same attribute, this index sorts
    the A-total tuples by their A-value once and answers
    [A theta k] selections by binary search — O(log n + answer). Tuples
    that are null on A never satisfy any comparison (Section 5), so
    they are simply absent from the index and the semantics are
    preserved exactly (property: agreement with [select_ak]). *)

open Nullrel

type t

val build : Attr.t -> Xrel.t -> t
(** Sorts the A-total tuples of the relation by their A-value.
    O(n log n). *)

val attr : t -> Attr.t
val cardinal : t -> int
(** Indexed (A-total) tuples. *)

val select : t -> Predicate.comparison -> Value.t -> Xrel.t
(** [select idx theta k] = [Algebra.select_ak a theta k] on the indexed
    relation. [Eq], [Lt], [Le], [Gt], [Ge] answer by binary search;
    [Neq] is the complement of [Eq] within the index. Raises
    [Invalid_argument] if [k] is null, [Value.Type_error] on a
    cross-domain probe. *)

val range : t -> ?lo:Value.t -> ?hi:Value.t -> unit -> Xrel.t
(** Inclusive range scan [lo <= A <= k], either end open when absent. *)

module Equi : Index_intf.S
(** The sorted array as an equality-probe index for single-attribute
    join keys: a probe is two binary searches, O(log n + answer).
    [build] raises [Exec_error] when the key is not a single
    attribute. *)
