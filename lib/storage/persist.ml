open Nullrel

exception Error of string

let errorf fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* ------------------------ schema format ----------------------- *)

let domain_fields = function
  | Domain.Ints -> [ "int" ]
  | Domain.Floats -> [ "float" ]
  | Domain.Strings -> [ "string" ]
  | Domain.Bools -> [ "bool" ]
  | Domain.Int_range (lo, hi) ->
      [ "intrange"; string_of_int lo; string_of_int hi ]
  | Domain.Enum values -> "enum" :: values

let domain_of_fields = function
  | [ "int" ] -> Domain.Ints
  | [ "float" ] -> Domain.Floats
  | [ "string" ] -> Domain.Strings
  | [ "bool" ] -> Domain.Bools
  | [ "intrange"; lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Domain.Int_range (lo, hi)
      | _ -> errorf "bad intrange bounds %s..%s" lo hi)
  | "enum" :: values -> Domain.Enum values
  | fields -> errorf "unknown domain %s" (String.concat " " fields)

let schema_to_string schema =
  let buf = Buffer.create 256 in
  let line fields =
    Buffer.add_string buf (String.concat "\t" fields);
    Buffer.add_char buf '\n'
  in
  line [ "relation"; Schema.name schema ];
  List.iter
    (fun (a, d) -> line (("column" :: [ Attr.name a ]) @ domain_fields d))
    (Schema.universe schema);
  (if not (Attr.Set.is_empty (Schema.key schema)) then
     line
       ("key" :: List.map Attr.name (Attr.Set.elements (Schema.key schema))));
  List.iter
    (fun fk ->
      let pairs =
        List.concat_map
          (fun (local, referenced) -> [ Attr.name local; Attr.name referenced ])
          fk.Schema.fk_pairs
      in
      line (("fk" :: [ fk.Schema.fk_target ]) @ pairs))
    (Schema.foreign_keys schema);
  Buffer.contents buf

let schema_of_string text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let parse_line acc line =
    let name, columns, key, fks = acc in
    match String.split_on_char '\t' line with
    | [ "relation"; n ] -> (Some n, columns, key, fks)
    | "column" :: attr :: domain ->
        (name, (attr, domain_of_fields domain) :: columns, key, fks)
    | "key" :: attrs -> (name, columns, attrs, fks)
    | "fk" :: target :: pairs ->
        let rec pair_up = function
          | [] -> ([], [])
          | local :: referenced :: rest ->
              let locals, refs = pair_up rest in
              (local :: locals, referenced :: refs)
          | [ _ ] -> errorf "fk line has an odd number of attributes"
        in
        let locals, refs = pair_up pairs in
        (name, columns, key, (locals, target, refs) :: fks)
    | _ -> errorf "unparseable schema line: %s" line
  in
  let name, columns, key, fks =
    List.fold_left parse_line (None, [], [], []) lines
  in
  match name with
  | None -> errorf "schema file has no 'relation' line"
  | Some name ->
      Schema.make ~key ~foreign_keys:(List.rev fks) name (List.rev columns)

(* -------------------------- manifest -------------------------- *)

let manifest_name = "MANIFEST"
let pending_name = "MANIFEST.next"
let format_version = "1"

type manifest = { m_lsn : int; m_entries : (string * (int * int)) list }

let manifest_to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "nullrel-manifest\t%s\t%d\n" format_version m.m_lsn);
  List.iter
    (fun (name, (scrc, dcrc)) ->
      Buffer.add_string buf
        (Printf.sprintf "relation\t%s\t%s\t%s\n" name (Crc32.to_hex scrc)
           (Crc32.to_hex dcrc)))
    m.m_entries;
  let crc = Crc32.digest (Buffer.contents buf) in
  Buffer.add_string buf (Printf.sprintf "end\t%s\n" (Crc32.to_hex crc));
  Buffer.contents buf

(* [None] means torn or not a manifest at all (callers treat it as
   absent); a manifest whose checksum verifies but that claims another
   format version raises: that is not damage, it is the future. *)
let manifest_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec split_at_end body = function
    | [] -> None
    | line :: rest when String.length line >= 4 && String.sub line 0 4 = "end\t"
      ->
        if List.for_all (String.equal "") rest then
          Some (List.rev body, String.sub line 4 (String.length line - 4))
        else None
    | line :: rest -> split_at_end (line :: body) rest
  in
  match split_at_end [] lines with
  | None -> None
  | Some (body_lines, crc_hex) -> (
      let body = String.concat "" (List.map (fun l -> l ^ "\n") body_lines) in
      match Crc32.of_hex crc_hex with
      | Some crc when crc = Crc32.digest body -> (
          match body_lines with
          | header :: entry_lines -> (
              match String.split_on_char '\t' header with
              | [ "nullrel-manifest"; version; lsn ] -> (
                  if not (String.equal version format_version) then
                    errorf "unsupported manifest version %s" version;
                  match int_of_string_opt lsn with
                  | None -> None
                  | Some m_lsn ->
                      let entry line =
                        match String.split_on_char '\t' line with
                        | [ "relation"; name; s_hex; d_hex ] -> (
                            match (Crc32.of_hex s_hex, Crc32.of_hex d_hex) with
                            | Some s_, Some d -> Some (name, (s_, d))
                            | _ -> None)
                        | _ -> None
                      in
                      let entries = List.map entry entry_lines in
                      if List.exists Option.is_none entries then None
                      else
                        Some
                          { m_lsn; m_entries = List.filter_map Fun.id entries })
              | _ -> None)
          | [] -> None)
      | _ -> None)

let read_manifest io dir name =
  let path = Filename.concat dir name in
  if not (io.Io.file_exists path) then None
  else manifest_of_string (io.Io.read_file path)

(* Expose the checkpoint's per-relation CRC stamps (schema, data) as
   hex, for sysview's sys_relations. Empty when the directory has no
   readable primary manifest — the caller renders that as ni. *)
let manifest_crcs ?(io = Io.real) ~dir () =
  match read_manifest io dir manifest_name with
  | None -> []
  | Some m ->
      List.map
        (fun (name, (scrc, dcrc)) ->
          (name, (Crc32.to_hex scrc, Crc32.to_hex dcrc)))
        m.m_entries

(* --------------------------- stats ---------------------------- *)

(* The STATS file rides along with the checkpoint: the {!Stats} body
   plus the same self-checksum trailer the manifest uses. It is pure
   acceleration state — a missing, torn or stale file only costs the
   planner its estimates — so damage degrades to "no stats" silently
   rather than quarantining anything. *)
let stats_name = "STATS"

let stats_to_string entries =
  let body = Stats.tables_to_string entries in
  Printf.sprintf "%send\t%s\n" body (Crc32.to_hex (Crc32.digest body))

let stats_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec split_at_end body = function
    | [] -> None
    | line :: rest when String.length line >= 4 && String.sub line 0 4 = "end\t"
      ->
        if List.for_all (String.equal "") rest then
          Some (List.rev body, String.sub line 4 (String.length line - 4))
        else None
    | line :: rest -> split_at_end (line :: body) rest
  in
  match split_at_end [] lines with
  | None -> None
  | Some (body_lines, crc_hex) -> (
      let body = String.concat "" (List.map (fun l -> l ^ "\n") body_lines) in
      match Crc32.of_hex crc_hex with
      | Some crc when crc = Crc32.digest body -> (
          match Stats.tables_of_string body with
          | entries -> Some entries
          | exception Stats.Corrupt _ -> None)
      | _ -> None)

let read_stats io dir =
  let path = Filename.concat dir stats_name in
  if not (io.Io.file_exists path) then None
  else stats_of_string (io.Io.read_file path)

(* ------------------------ constraints ------------------------- *)

(* The CONSTRAINTS file persists declared constraint definitions with
   the checkpoint, under the same self-checksum trailer as STATS plus a
   per-relation CRC stamp: a definition counts as verified only while
   every relation it involves still carries the data file the stamp was
   cut against. Unlike stats, a damaged file does not merely cost
   acceleration — the declarations themselves are semantics — so the
   loader reports the damage in the journal note instead of degrading
   silently. *)
let constraints_name = "CONSTRAINTS"
let constraints_format_version = "1"

let constraints_to_string ~lsn cat data_crcs =
  let defs = Catalog.constraints cat in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "nullrel-constraints\t%s\t%d\n" constraints_format_version
       lsn);
  List.iter
    (fun def ->
      Buffer.add_string buf ("def\t" ^ Constr.def_to_line def ^ "\n"))
    defs;
  List.iter
    (fun name -> Buffer.add_string buf ("stale\t" ^ name ^ "\n"))
    (Catalog.unverified_constraints cat);
  let stamped = List.sort_uniq String.compare (List.concat_map Constr.relations defs) in
  List.iter
    (fun rel ->
      match List.assoc_opt rel data_crcs with
      | Some crc -> Buffer.add_string buf (Printf.sprintf "stamp\t%s\t%s\n" rel crc)
      | None -> ())
    stamped;
  let body = Buffer.contents buf in
  Printf.sprintf "%send\t%s\n" body (Crc32.to_hex (Crc32.digest body))

type constraints_file = {
  cf_lsn : int;
  cf_defs : Constr.def list;
  cf_stale : string list;
  cf_stamps : (string * string) list;
}

let constraints_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec split_at_end body = function
    | [] -> None
    | line :: rest when String.length line >= 4 && String.sub line 0 4 = "end\t"
      ->
        if List.for_all (String.equal "") rest then
          Some (List.rev body, String.sub line 4 (String.length line - 4))
        else None
    | line :: rest -> split_at_end (line :: body) rest
  in
  match split_at_end [] lines with
  | None -> None
  | Some (body_lines, crc_hex) -> (
      let body = String.concat "" (List.map (fun l -> l ^ "\n") body_lines) in
      match Crc32.of_hex crc_hex with
      | Some crc when crc = Crc32.digest body -> (
          match body_lines with
          | header :: entry_lines -> (
              match String.split_on_char '\t' header with
              | [ "nullrel-constraints"; version; lsn ] -> (
                  if not (String.equal version constraints_format_version) then
                    errorf "unsupported constraints version %s" version;
                  match int_of_string_opt lsn with
                  | None -> None
                  | Some cf_lsn ->
                      let parse acc line =
                        match acc with
                        | None -> None
                        | Some cf -> (
                            match String.index_opt line '\t' with
                            | None -> None
                            | Some i -> (
                                let tag = String.sub line 0 i in
                                let rest =
                                  String.sub line (i + 1)
                                    (String.length line - i - 1)
                                in
                                match tag with
                                | "def" -> (
                                    match Constr.def_of_line rest with
                                    | Some def ->
                                        Some
                                          { cf with cf_defs = def :: cf.cf_defs }
                                    | None -> None)
                                | "stale" ->
                                    Some
                                      { cf with cf_stale = rest :: cf.cf_stale }
                                | "stamp" -> (
                                    match String.split_on_char '\t' rest with
                                    | [ rel; crc ] ->
                                        Some
                                          {
                                            cf with
                                            cf_stamps =
                                              (rel, crc) :: cf.cf_stamps;
                                          }
                                    | _ -> None)
                                | _ -> None))
                      in
                      Option.map
                        (fun cf ->
                          {
                            cf with
                            cf_defs = List.rev cf.cf_defs;
                            cf_stale = List.rev cf.cf_stale;
                            cf_stamps = List.rev cf.cf_stamps;
                          })
                        (List.fold_left parse
                           (Some
                              {
                                cf_lsn;
                                cf_defs = [];
                                cf_stale = [];
                                cf_stamps = [];
                              })
                           entry_lines))
              | _ -> None)
          | [] -> None)
      | _ -> None)

let read_constraints io dir =
  let path = Filename.concat dir constraints_name in
  if not (io.Io.file_exists path) then `Absent
  else
    match constraints_of_string (io.Io.read_file path) with
    | Some cf -> `Loaded cf
    | None -> `Damaged

(* -------------------------- indexes --------------------------- *)

(* The INDEX file persists secondary-index declarations and, for each,
   a positional dump of the built structure, under the same protocol
   as STATS and CONSTRAINTS: a self-checksum trailer plus a
   per-relation CRC stamp cut against the data file written beside it.
   At load a dump re-attaches only while its stamp still matches the
   data just read; a stale stamp, a missing dump, or any anomaly in
   the payload degrades to a from-scratch rebuild of the declared
   index — slower, never wrong. *)
let indexes_name = "INDEX"
let indexes_format_version = "1"

let attrs_to_field attrs =
  String.concat "," (List.map Attr.name (Attr.Set.elements attrs))

let attrs_of_field s =
  match String.split_on_char ',' s with
  | names when List.for_all (fun n -> String.length n > 0) names && names <> []
    ->
      Some (Attr.set_of_list names)
  | _ -> None

let indexes_to_string ~lsn cat data_crcs =
  let decls = Catalog.all_indexes cat in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "nullrel-indexes\t%s\t%d\n" indexes_format_version lsn);
  List.iter
    (fun (rel, kind, attrs) ->
      Buffer.add_string buf
        (Printf.sprintf "decl\t%s\t%s\t%s\n" rel kind (attrs_to_field attrs)))
    decls;
  let stamped =
    List.sort_uniq String.compare (List.map (fun (rel, _, _) -> rel) decls)
  in
  List.iter
    (fun rel ->
      match List.assoc_opt rel data_crcs with
      | Some crc ->
          Buffer.add_string buf (Printf.sprintf "stamp\t%s\t%s\n" rel crc)
      | None -> ())
    stamped;
  List.iter
    (fun (rel, kind, attrs) ->
      match Catalog.dump_index cat rel ~kind attrs with
      | None -> () (* no dump: the loader rebuilds from the decl *)
      | Some lines ->
          List.iter
            (fun payload ->
              Buffer.add_string buf
                (Printf.sprintf "line\t%s\t%s\t%s\t%s\n" rel kind
                   (attrs_to_field attrs) payload))
            lines)
    decls;
  let body = Buffer.contents buf in
  Printf.sprintf "%send\t%s\n" body (Crc32.to_hex (Crc32.digest body))

type indexes_file = {
  xf_decls : (string * string * string) list;
      (* relation, kind, attrs field — declaration order *)
  xf_stamps : (string * string) list;
  xf_lines : ((string * string * string) * string) list;
      (* (relation, kind, attrs field) -> payload lines, file order *)
}

let indexes_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec split_at_end body = function
    | [] -> None
    | line :: rest when String.length line >= 4 && String.sub line 0 4 = "end\t"
      ->
        if List.for_all (String.equal "") rest then
          Some (List.rev body, String.sub line 4 (String.length line - 4))
        else None
    | line :: rest -> split_at_end (line :: body) rest
  in
  match split_at_end [] lines with
  | None -> None
  | Some (body_lines, crc_hex) -> (
      let body = String.concat "" (List.map (fun l -> l ^ "\n") body_lines) in
      match Crc32.of_hex crc_hex with
      | Some crc when crc = Crc32.digest body -> (
          match body_lines with
          | header :: entry_lines -> (
              match String.split_on_char '\t' header with
              | [ "nullrel-indexes"; version; _lsn ] ->
                  if not (String.equal version indexes_format_version) then
                    errorf "unsupported indexes version %s" version;
                  let parse acc line =
                    match acc with
                    | None -> None
                    | Some xf -> (
                        match String.split_on_char '\t' line with
                        | [ "decl"; rel; kind; attrs ] ->
                            Some
                              {
                                xf with
                                xf_decls = (rel, kind, attrs) :: xf.xf_decls;
                              }
                        | [ "stamp"; rel; crc ] ->
                            Some
                              {
                                xf with
                                xf_stamps = (rel, crc) :: xf.xf_stamps;
                              }
                        | [ "line"; rel; kind; attrs; payload ] ->
                            Some
                              {
                                xf with
                                xf_lines =
                                  ((rel, kind, attrs), payload) :: xf.xf_lines;
                              }
                        | _ -> None)
                  in
                  Option.map
                    (fun xf ->
                      {
                        xf_decls = List.rev xf.xf_decls;
                        xf_stamps = List.rev xf.xf_stamps;
                        xf_lines = List.rev xf.xf_lines;
                      })
                    (List.fold_left parse
                       (Some { xf_decls = []; xf_stamps = []; xf_lines = [] })
                       entry_lines)
              | _ -> None)
          | [] -> None)
      | _ -> None)

let read_indexes io dir =
  let path = Filename.concat dir indexes_name in
  if not (io.Io.file_exists path) then `Absent
  else
    match indexes_of_string (io.Io.read_file path) with
    | Some xf -> `Loaded xf
    | None -> `Damaged

(* ---------------------------- save ---------------------------- *)

let m_checkpoints =
  Obs.Metrics.counter ~help:"Checkpoints written by Persist.save"
    "storage_checkpoints_total"

let m_checkpoint_bytes =
  Obs.Metrics.counter
    ~help:"Bytes written per checkpoint (schemas, data, manifest)"
    "storage_checkpoint_bytes_total"

let m_wal_replayed =
  Obs.Metrics.counter ~help:"Journal records replayed during recovery"
    "storage_wal_replayed_total"

let m_index_attached =
  Obs.Metrics.counter
    ~help:"Persisted secondary-index dumps re-attached verbatim at load"
    "storage_index_attach_total"

let m_index_rebuilt =
  Obs.Metrics.counter
    ~help:
      "Persisted secondary-index declarations rebuilt from data at load \
       (stale stamp, missing or anomalous dump)"
    "storage_index_rebuild_total"

let save ?(io = Io.real) ?(lsn = 0) ~dir cat =
  if not (io.Io.file_exists dir) then io.Io.mkdir dir;
  let path name = Filename.concat dir name in
  let entries =
    List.map
      (fun (name, (schema, x)) ->
        ( name,
          schema_to_string schema,
          Csv.write_string (Schema.attrs schema) x ))
      (Catalog.to_db cat)
  in
  (* Stage everything first: data files as *.tmp siblings, the manifest
     as MANIFEST.next. Nothing visible is touched yet, so a crash in
     this phase is a no-op. *)
  List.iter
    (fun (name, stext, dtext) ->
      io.Io.write_file (path (name ^ ".schema.tmp")) stext;
      io.Io.write_file (path (name ^ ".csv.tmp")) dtext)
    entries;
  let manifest =
    {
      m_lsn = lsn;
      m_entries =
        List.map
          (fun (name, stext, dtext) ->
            (name, (Crc32.digest stext, Crc32.digest dtext)))
          entries;
    }
  in
  io.Io.write_file (path pending_name) (manifest_to_string manifest);
  (* Fresh statistics ride along, each stamped with the CRC of the data
     file being written — the loader re-checks the stamp, so a torn or
     superseded STATS degrades to "no stats", never to wrong ones. *)
  let stats_entries =
    List.filter_map
      (fun (name, _, dtext) ->
        match Catalog.stats_status cat name with
        | Catalog.Fresh t -> Some (name, Crc32.to_hex (Crc32.digest dtext), t)
        | Catalog.Stale _ | Catalog.Missing -> None)
      entries
  in
  io.Io.write_file (path (stats_name ^ ".tmp")) (stats_to_string stats_entries);
  (* Constraint definitions ride along the same way, stamped with the
     CRCs of the data files being written: at load, a definition counts
     as verified only while those stamps still match. *)
  let data_crcs =
    List.map
      (fun (name, _, dtext) -> (name, Crc32.to_hex (Crc32.digest dtext)))
      entries
  in
  io.Io.write_file
    (path (constraints_name ^ ".tmp"))
    (constraints_to_string ~lsn cat data_crcs);
  (* Secondary-index declarations and their positional dumps ride
     along too, stamped the same way: at load a dump re-attaches only
     while the relation still carries the data file it was cut
     against, and degrades to a rebuild otherwise. *)
  io.Io.write_file
    (path (indexes_name ^ ".tmp"))
    (indexes_to_string ~lsn cat data_crcs);
  (* Rename data files into place. A crash here leaves a mix of old and
     new files, each atomic on its own; the reader disambiguates by
     checksum against MANIFEST (old) and MANIFEST.next (staged above). *)
  List.iter
    (fun (name, _, _) ->
      io.Io.rename (path (name ^ ".schema.tmp")) (path (name ^ ".schema"));
      io.Io.rename (path (name ^ ".csv.tmp")) (path (name ^ ".csv")))
    entries;
  io.Io.rename (path (stats_name ^ ".tmp")) (path stats_name);
  io.Io.rename (path (constraints_name ^ ".tmp")) (path constraints_name);
  io.Io.rename (path (indexes_name ^ ".tmp")) (path indexes_name);
  (* The commit point. *)
  io.Io.rename (path pending_name) (path manifest_name);
  io.Io.fsync_dir dir;
  Obs.Metrics.inc m_checkpoints;
  if Obs.Metrics.is_enabled () then
    Obs.Metrics.add m_checkpoint_bytes
      (String.length (manifest_to_string manifest)
      + List.fold_left
          (fun acc (_, stext, dtext) ->
            acc + String.length stext + String.length dtext)
          0 entries)

(* ---------------------------- load ---------------------------- *)

type status = Ok | Corrupt of string | Recovered of int

type report = {
  catalog : Catalog.t;
  statuses : (string * status) list;
  lsn : int;
  journal_note : string option;
}

let pp_status ppf = function
  | Ok -> Format.fprintf ppf "ok"
  | Corrupt reason -> Format.fprintf ppf "quarantined — %s" reason
  | Recovered n ->
      Format.fprintf ppf "recovered (%d journal record%s replayed)" n
        (if n = 1 then "" else "s")

let report_lines report =
  List.map
    (fun (name, status) ->
      Format.asprintf "%s: %a" name pp_status status)
    report.statuses
  @ (match report.journal_note with
    | None -> []
    | Some note -> [ "journal: " ^ note ])
  @
  match Catalog.unverified_constraints report.catalog with
  | [] -> []
  | stale ->
      [
        Printf.sprintf
          "constraints: %d stale (%s) — data changed since last \
           verification; run .check"
          (List.length stale)
          (String.concat ", " stale);
      ]

(* One relation loaded from its pair of files, checked against the
   manifests when present. Returns the schema/xrel plus the LSN of the
   checkpoint the data file belongs to. *)
let load_relation io dir name expected =
  let path suffix = Filename.concat dir (name ^ suffix) in
  let read suffix =
    let p = path suffix in
    if not (io.Io.file_exists p) then errorf "missing %s file" suffix
    else io.Io.read_file p
  in
  let stext = read ".schema" in
  let dtext = read ".csv" in
  let base_lsn =
    match expected with
    | None -> 0 (* legacy directory: nothing to check against *)
    | Some (primary, pending) -> (
        let scrc = Crc32.digest stext and dcrc = Crc32.digest dtext in
        let matches part m =
          match List.assoc_opt name m.m_entries with
          | Some entry -> part entry
          | None -> false
        in
        let schema_ok =
          List.exists
            (function
              | None -> false
              | Some m -> matches (fun (s_, _) -> s_ = scrc) m)
            [ Some primary; pending ]
        in
        if not schema_ok then
          errorf "schema checksum mismatch (crc %s)" (Crc32.to_hex scrc);
        (* The data file decides which checkpoint this relation is at. *)
        if matches (fun (_, d) -> d = dcrc) primary then primary.m_lsn
        else
          match pending with
          | Some p when matches (fun (_, d) -> d = dcrc) p -> p.m_lsn
          | _ ->
              errorf "data checksum mismatch (crc %s)" (Crc32.to_hex dcrc))
  in
  let schema = schema_of_string stext in
  let _, x = Csv.read_string ~schema dtext in
  (schema, x, base_lsn, Crc32.to_hex (Crc32.digest dtext))

let load_report ?(io = Io.real) ~dir () =
  if not (io.Io.file_exists dir) then errorf "no such directory %s" dir;
  let primary = read_manifest io dir manifest_name in
  let pending = read_manifest io dir pending_name in
  (* A directory whose first-ever checkpoint crashed after staging has a
     valid MANIFEST.next and no MANIFEST: promote the pending one. *)
  let primary, pending =
    match (primary, pending) with
    | None, Some p -> (Some p, None)
    | pair -> pair
  in
  let names =
    match primary with
    | Some m ->
        let pending_only =
          match pending with
          | None -> []
          | Some p ->
              List.filter
                (fun (name, _) -> not (List.mem_assoc name m.m_entries))
                p.m_entries
        in
        List.map fst (m.m_entries @ pending_only)
    | None ->
        (* legacy directory: every *.schema file names a relation *)
        let entries = Array.to_list (io.Io.readdir dir) in
        List.filter_map
          (fun entry ->
            if Filename.check_suffix entry ".schema" then
              Some (Filename.chop_suffix entry ".schema")
            else None)
          entries
  in
  let names = List.sort_uniq String.compare names in
  let expected = Option.map (fun m -> (m, pending)) primary in
  let loaded =
    List.map
      (fun name ->
        match load_relation io dir name expected with
        | schema, x, base_lsn, dcrc -> (
            match Catalog.add Catalog.empty schema x with
            | _ -> (name, `Loaded (schema, x, base_lsn, dcrc))
            | exception Catalog.Violation violations ->
                ( name,
                  `Corrupt
                    (Printf.sprintf "schema violations: %s"
                       (String.concat "; "
                          (List.map
                             (Pp.to_string Schema.pp_violation)
                             violations))) ))
        | exception Error msg -> (name, `Corrupt msg)
        | exception Csv.Error msg -> (name, `Corrupt ("bad CSV: " ^ msg))
        | exception Sys_error msg -> (name, `Corrupt msg))
      names
  in
  let catalog, base_lsns =
    List.fold_left
      (fun (cat, lsns) (name, outcome) ->
        match outcome with
        | `Loaded (schema, x, base_lsn, _) ->
            (Catalog.add_unchecked cat schema x, (name, base_lsn) :: lsns)
        | `Corrupt _ -> (cat, lsns))
      (Catalog.empty, []) loaded
  in
  (* Attach persisted statistics before journal replay: an entry sticks
     only when its CRC stamp matches the data file just loaded, and any
     replayed record afterwards bumps the relation's version, leaving
     the attached stats observably stale rather than silently wrong. *)
  let catalog =
    match read_stats io dir with
    | None -> catalog
    | Some stats_entries ->
        List.fold_left
          (fun cat (name, stamp, t) ->
            let matches =
              List.exists
                (function
                  | n, `Loaded (_, _, _, dcrc) ->
                      String.equal n name && String.equal dcrc stamp
                  | _, `Corrupt _ -> false)
                loaded
            in
            if matches then Catalog.set_stats cat name t else cat)
          catalog stats_entries
  in
  let manifest_lsn = match primary with Some m -> m.m_lsn | None -> 0 in
  (* Attach persisted constraint definitions before journal replay, so
     replayed DDL (gated by the CONSTRAINTS checkpoint lsn) lands on
     top of them. A definition is verified only while every relation it
     involves still carries the data file its stamp was cut against;
     otherwise it attaches as stale — enforced on new writes, but the
     restored data itself unchecked. *)
  let loaded_crc name =
    List.find_map
      (function
        | n, `Loaded (_, _, _, dcrc) when String.equal n name -> Some dcrc
        | _ -> None)
      loaded
  in
  let catalog, constraints_lsn, constraints_note =
    match read_constraints io dir with
    | `Absent -> (catalog, manifest_lsn, None)
    | `Damaged ->
        ( catalog,
          manifest_lsn,
          Some
            "CONSTRAINTS file damaged; declarations lost — re-declare or \
             restore from backup" )
    | `Loaded cf ->
        let cat =
          List.fold_left
            (fun cat def ->
              let fresh =
                (not (List.mem (Constr.name def) cf.cf_stale))
                && List.for_all
                     (fun rel ->
                       match
                         (List.assoc_opt rel cf.cf_stamps, loaded_crc rel)
                       with
                       | Some stamp, Some dcrc -> String.equal stamp dcrc
                       | _ -> false)
                     (Constr.relations def)
              in
              Catalog.attach_constraint ~verified:fresh cat def)
            catalog cf.cf_defs
        in
        (cat, cf.cf_lsn, None)
  in
  (* Re-attach persisted secondary indexes before journal replay, so
     replayed deltas advance them in place like live statements do. A
     dump is trusted only while the relation's stamp matches the data
     file just loaded; a stale stamp, a missing dump, or any payload
     anomaly keeps the declaration and rebuilds the index from data —
     slower, never wrong. A damaged INDEX file loses the declarations
     themselves, reported like CONSTRAINTS damage. *)
  let catalog, indexes_note =
    match read_indexes io dir with
    | `Absent -> (catalog, None)
    | `Damaged ->
        ( catalog,
          Some
            "INDEX file damaged; secondary indexes dropped — re-declare \
             with .index" )
    | `Loaded xf ->
        let cat =
          List.fold_left
            (fun cat (rel, kind, attrs_field) ->
              match attrs_of_field attrs_field with
              | None -> cat
              | Some attrs ->
                  let fresh =
                    match
                      (List.assoc_opt rel xf.xf_stamps, loaded_crc rel)
                    with
                    | Some stamp, Some dcrc -> String.equal stamp dcrc
                    | _ -> false
                  in
                  let lines =
                    if not fresh then None
                    else
                      match
                        List.filter_map
                          (fun (key, payload) ->
                            if key = (rel, kind, attrs_field) then
                              Some payload
                            else None)
                          xf.xf_lines
                      with
                      | [] -> None
                      | ls -> Some ls
                  in
                  let cat, attached =
                    Catalog.restore_index cat rel ~kind attrs ~lines
                  in
                  (if attached then Obs.Metrics.inc m_index_attached
                   else if Option.is_some (Catalog.find cat rel) then
                     Obs.Metrics.inc m_index_rebuilt);
                  cat)
            catalog xf.xf_decls
        in
        (cat, None)
  in
  (* Replay the journal tail, one operation at a time: relation changes
     past the checkpoint the relation's data file belongs to (replaying
     onto a relation from a {e newer} half-renamed checkpoint is
     skipped by the per-relation LSN gate), constraint DDL past the
     CONSTRAINTS checkpoint. A record is one whole transaction — its
     cascade deltas replay together or, if the frame is torn, not at
     all. *)
  let records, tail_note = Wal.read ~io ~dir in
  let catalog, replayed, top_lsn, notes =
    List.fold_left
      (fun (cat, replayed, top_lsn, notes) (record : Wal.record) ->
        List.fold_left
          (fun (cat, replayed, top_lsn, notes) op ->
            match op with
            | Wal.Change c -> (
                match List.assoc_opt c.Wal.rel base_lsns with
                | Some base when record.Wal.lsn > base -> (
                    match Wal.apply_op cat op with
                    | cat ->
                        Obs.Metrics.inc m_wal_replayed;
                        let count =
                          1
                          + Option.value ~default:0
                              (List.assoc_opt c.Wal.rel replayed)
                        in
                        ( cat,
                          (c.Wal.rel, count)
                          :: List.remove_assoc c.Wal.rel replayed,
                          max top_lsn record.Wal.lsn,
                          notes )
                    | exception (Wal.Error msg | Error msg) ->
                        (cat, replayed, top_lsn, msg :: notes)
                    | exception Catalog.Violation _ ->
                        ( cat,
                          replayed,
                          top_lsn,
                          Printf.sprintf
                            "replaying lsn %d left %s violating its schema"
                            record.Wal.lsn c.Wal.rel
                          :: notes ))
                | Some _ ->
                    (cat, replayed, top_lsn, notes) (* already reflected *)
                | None ->
                    ( cat,
                      replayed,
                      top_lsn,
                      Printf.sprintf "lsn %d targets unloadable relation %s"
                        record.Wal.lsn c.Wal.rel
                      :: notes ))
            | Wal.Add_constraint _ | Wal.Drop_constraint _ ->
                if record.Wal.lsn > constraints_lsn then
                  match Wal.apply_op cat op with
                  | cat ->
                      Obs.Metrics.inc m_wal_replayed;
                      (cat, replayed, max top_lsn record.Wal.lsn, notes)
                  | exception (Wal.Error msg | Error msg) ->
                      (cat, replayed, top_lsn, msg :: notes)
                else (cat, replayed, top_lsn, notes))
          (cat, replayed, top_lsn, notes)
          record.Wal.ops)
      (catalog, [], manifest_lsn, [])
      records
  in
  let notes =
    match constraints_note with None -> notes | Some n -> n :: notes
  in
  let notes =
    match indexes_note with None -> notes | Some n -> n :: notes
  in
  let statuses =
    List.map
      (fun (name, outcome) ->
        match outcome with
        | `Corrupt reason -> (name, Corrupt reason)
        | `Loaded _ -> (
            match List.assoc_opt name replayed with
            | Some n -> (name, Recovered n)
            | None -> (name, Ok)))
      loaded
  in
  let journal_note =
    match Option.to_list tail_note @ List.rev notes with
    | [] -> None
    | all -> Some (String.concat "; " all)
  in
  { catalog; statuses; lsn = top_lsn; journal_note }

let load ?(io = Io.real) ~dir () =
  let report = load_report ~io ~dir () in
  List.iter
    (fun (name, status) ->
      match status with
      | Corrupt reason -> errorf "%s: %s" name reason
      | Ok | Recovered _ -> ())
    report.statuses;
  report.catalog

let recover ?(io = Io.real) ~dir () =
  let report = load_report ~io ~dir () in
  save ~io ~lsn:report.lsn ~dir report.catalog;
  Wal.reset ~io ~dir;
  Array.iter
    (fun entry ->
      if Filename.check_suffix entry ".tmp" then
        try io.Io.remove (Filename.concat dir entry) with Sys_error _ -> ())
    (io.Io.readdir dir);
  report
