(** An injectable filesystem, so the durability layer can be driven by
    fault injection in tests.

    {!real} performs actual syscalls (with [fsync] on every mutating
    file operation — the primitives here are deliberately {e raw} and
    non-atomic; atomicity is built on top of them by {!Persist} and
    {!Wal} with the write-to-temp / fsync / rename / fsync-dir
    protocol).

    {!faulty} wraps another filesystem and makes its [n]-th mutating
    operation fail — cleanly, or after truncating, or after a short
    (torn) write — and every later mutating operation fail immediately,
    modelling a process that crashed at that point. {!counting} counts
    mutating operations so a test can first measure a workload and then
    replay it once per possible crash site. *)

exception Injected_fault of string
(** Raised by {!faulty} filesystems; never by {!real}. *)

type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
      (** Create-or-truncate, write everything, fsync. Not atomic. *)
  append_file : string -> string -> unit;
      (** Append (creating if needed), fsync. Not atomic. *)
  rename : string -> string -> unit;
      (** Atomic on POSIX filesystems; the commit point of every
          protocol built on this interface. *)
  remove : string -> unit;
  mkdir : string -> unit;
  readdir : string -> string array;
  file_exists : string -> bool;
  fsync_dir : string -> unit;
      (** Flush directory metadata so renames survive power loss. *)
  note : string -> unit;
      (** Protocol narration: durable protocols announce named points
          (e.g. the session engine's ["group-commit:fsynced"]) so
          {!crash_at} can model a process killed exactly there.
          [ignore] on {!real}; wrappers pass it through. *)
}

val real : t

type fault =
  | Fail  (** The faulted operation has no effect at all. *)
  | Truncate
      (** A faulted write leaves the file truncated to zero bytes
          (appends append nothing). *)
  | Short_write
      (** A faulted write persists only a prefix of the data — a torn
          write. *)

val faulty : fault:fault -> after:int -> t -> t
(** [faulty ~fault ~after io]: mutating operations [0 .. after-1] pass
    through to [io]; operation number [after] applies [fault] and raises
    {!Injected_fault}; every subsequent mutating operation raises
    immediately (the process is dead). Reads always pass through, so a
    post-mortem can inspect the debris. *)

val crash_at : point:string -> t -> t
(** [crash_at ~point io] kills the modelled process at a {e named}
    protocol point instead of an operation count: when the wrapped
    code announces [point] through {!field-note}, the note raises
    {!Injected_fault} and every subsequent mutating operation fails
    immediately (the process is dead). Reads still pass through for
    post-mortems. Complements {!faulty}, which counts mutating
    operations — [crash_at] pins the crash to a protocol step (before
    the group fsync, after it but before snapshot publication, ...)
    without counting ops first. *)

val flaky : failures:int -> t -> t
(** [flaky ~failures io]: the first [failures] fallible operations
    raise [Sys_error] {e before} touching the filesystem (a transient
    fault with no effect — EINTR, EAGAIN, a busy NFS server), after
    which everything passes through. Pair with {!retrying}. *)

val retrying :
  ?attempts:int ->
  ?backoff:float ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  t ->
  t
(** [retrying io] wraps every fallible operation in a bounded
    retry-with-exponential-backoff loop: a [Sys_error] is retried up to
    [attempts] times (default 3) sleeping [backoff] seconds (default
    2ms, doubling, capped at 50ms) between tries; on exhaustion it
    raises {!Nullrel.Exec_error.Error} with [Storage_fault]. Only
    [Sys_error] is treated as transient — {!Injected_fault} (a modelled
    crash) always propagates immediately. Retrying assumes the failed
    operation had no effect, which holds for the transient faults this
    targets.

    Each sleep is jittered deterministically: the wrapper draws from a
    seeded LCG and sleeps a uniform fraction in [1/2, 1] of the
    nominal delay, so concurrent sessions whose operations collided do
    not retry in lockstep and collide again. [seed] pins the jitter
    stream (tests); by default every wrapper gets a distinct seed from
    a process-wide counter. [sleep] overrides the actual sleeping
    (tests observe the schedule instead of waiting it out). *)

val counting : t -> t * (unit -> int)
(** [counting io] is [io] plus a counter of mutating operations
    performed so far. *)
