open Nullrel

(* The subsumption-probe core now lives in [Nullrel.Subsume_index]
   where [Kernel] can reach it; this module re-exports it for
   storage-layer callers and adds the equi-probe index. *)

type t = Subsume_index.t

let build = Subsume_index.build
let count_at = Subsume_index.count_at
let subsuming_exists = Subsume_index.subsuming_exists
let strictly_subsuming_exists = Subsume_index.strictly_subsuming_exists
let diff = Subsume_index.diff
let minimize = Subsume_index.minimize
let x_mem = Subsume_index.x_mem

(* Equality probes for the join: bucket the X-total tuples by their
   canonical X-restriction. *)
module Equi : Index_intf.S = struct
  type t = {
    x : Attr.Set.t;
    table : ((Attr.t * Value.t) list, Tuple.t list) Hashtbl.t;
    n : int;
  }

  let kind = "hash"

  let build x rel =
    let table = Hashtbl.create (max 16 (Xrel.cardinal rel)) in
    let n = ref 0 in
    List.iter
      (fun r ->
        if Tuple.is_total_on x r then begin
          incr n;
          let key = Tuple.to_list (Tuple.restrict r x) in
          Hashtbl.replace table key
            (r :: Option.value (Hashtbl.find_opt table key) ~default:[])
        end)
      (Xrel.to_list rel);
    { x; table; n = !n }

  let cardinal t = t.n

  let probe t r =
    if Tuple.is_total_on t.x r then
      Option.value
        (Hashtbl.find_opt t.table (Tuple.to_list (Tuple.restrict r t.x)))
        ~default:[]
    else []
end
