open Nullrel

(* The subsumption-probe core now lives in [Nullrel.Subsume_index]
   where [Kernel] can reach it; this module re-exports it for
   storage-layer callers and adds the equi-probe index. *)

type t = Subsume_index.t

let build = Subsume_index.build
let advance = Subsume_index.advance
let prepare = Subsume_index.prepare
let count_at = Subsume_index.count_at
let subsuming_exists = Subsume_index.subsuming_exists
let strictly_subsuming_exists = Subsume_index.strictly_subsuming_exists
let mem = Subsume_index.mem
let cardinal = Subsume_index.cardinal
let subsumed_within = Subsume_index.subsumed_within
let to_list = Subsume_index.to_list
let diff = Subsume_index.diff
let minimize = Subsume_index.minimize

(* Equality probes for the join: bucket the X-total tuples by their
   canonical X-restriction. Persistent under DML like the subsumption
   index: an immutable bucket table plus a functional overlay that
   [advance] extends, compacted once it outgrows ~sqrt(n). *)
module Equi : Index_intf.S = struct
  type base = {
    x : Attr.Set.t;
    table : ((Attr.t * Value.t) list, Tuple.t list) Hashtbl.t;
    bn : int;  (* X-total tuples in [table] *)
  }

  type t = {
    b : base;
    added : Tuple.t list;  (* X-total, live, not in the base *)
    removed : Tuple.Set.t;  (* X-total, in the base, not live *)
    n : int;  (* live X-total tuples *)
  }

  let kind = "hash"
  let key_of x r = Tuple.to_list (Tuple.restrict r x)
  let of_base b = { b; added = []; removed = Tuple.Set.empty; n = b.bn }

  let base_of x tuples =
    let table = Hashtbl.create (max 16 (List.length tuples)) in
    let bn = ref 0 in
    List.iter
      (fun r ->
        if Tuple.is_total_on x r then begin
          incr bn;
          let key = key_of x r in
          Hashtbl.replace table key
            (r :: Option.value (Hashtbl.find_opt table key) ~default:[])
        end)
      tuples;
    { x; table; bn = !bn }

  let build x rel = of_base (base_of x (Xrel.to_list rel))
  let cardinal t = t.n

  let base_probe b r =
    Option.value (Hashtbl.find_opt b.table (key_of b.x r)) ~default:[]

  let probe t r =
    if not (Tuple.is_total_on t.b.x r) then []
    else begin
      let hits = base_probe t.b r in
      let hits =
        if Tuple.Set.is_empty t.removed then hits
        else List.filter (fun u -> not (Tuple.Set.mem u t.removed)) hits
      in
      match t.added with
      | [] -> hits
      | added ->
          let k = key_of t.b.x r in
          List.fold_left
            (fun acc u -> if key_of t.b.x u = k then u :: acc else acc)
            hits added
    end

  let live_tuples t =
    Hashtbl.fold
      (fun _ bucket acc ->
        List.fold_left
          (fun acc u -> if Tuple.Set.mem u t.removed then acc else u :: acc)
          acc bucket)
      t.b.table t.added

  let compact t = of_base (base_of t.b.x (live_tuples t))
  let compaction_slack = 16

  let is_live t u =
    (not (Tuple.Set.mem u t.removed))
    && (List.exists (Tuple.equal u) t.added
       || List.exists (Tuple.equal u) (base_probe t.b u))

  let advance t ~added ~removed =
    let x = t.b.x in
    let t =
      List.fold_left
        (fun t u ->
          if (not (Tuple.is_total_on x u)) || not (is_live t u) then t
          else if List.exists (Tuple.equal u) t.added then
            {
              t with
              added = List.filter (fun v -> not (Tuple.equal v u)) t.added;
              n = t.n - 1;
            }
          else { t with removed = Tuple.Set.add u t.removed; n = t.n - 1 })
        t removed
    in
    let t =
      List.fold_left
        (fun t u ->
          if (not (Tuple.is_total_on x u)) || is_live t u then t
          else if Tuple.Set.mem u t.removed then
            { t with removed = Tuple.Set.remove u t.removed; n = t.n + 1 }
          else { t with added = u :: t.added; n = t.n + 1 })
        t added
    in
    let overlay = List.length t.added + Tuple.Set.cardinal t.removed in
    if overlay > compaction_slack + int_of_float (sqrt (float_of_int t.n)) then
      compact t
    else t

  (* One line per bucket: the bucket members' canonical positions,
     space-separated. Restoring re-hashes one restriction per bucket
     instead of one per tuple — and never re-scans the non-total
     tuples. *)
  let dump t ~pos =
    let t =
      if t.added = [] && Tuple.Set.is_empty t.removed then t else compact t
    in
    let exception Missing in
    try
      Some
        (Hashtbl.fold
           (fun _ bucket acc ->
             String.concat " "
               (List.map
                  (fun u ->
                    match pos u with
                    | Some p -> string_of_int p
                    | None -> raise Missing)
                  bucket)
             :: acc)
           t.b.table [])
    with Missing -> None

  let restore x arr lines =
    let table = Hashtbl.create (max 16 (List.length lines)) in
    let n = ref 0 in
    try
      List.iter
        (fun line ->
          let ps =
            List.filter_map
              (fun s -> if s = "" then None else Some (int_of_string s))
              (String.split_on_char ' ' line)
          in
          match ps with
          | [] -> ()
          | p0 :: _ ->
              let tuple p =
                if p < 0 || p >= Array.length arr then
                  failwith "position out of range"
                else arr.(p)
              in
              let first = tuple p0 in
              if not (Tuple.is_total_on x first) then
                failwith "bucket head not total on the key";
              let key = key_of x first in
              if Hashtbl.mem table key then failwith "duplicate bucket";
              let bucket = List.map tuple ps in
              Hashtbl.replace table key bucket;
              n := !n + List.length bucket)
        lines;
      Some (of_base { x; table; bn = !n })
    with Failure _ -> None
end
