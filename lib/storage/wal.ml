open Nullrel

type change = { rel : string; added : Xrel.t; removed : Xrel.t }

type op =
  | Change of change
  | Add_constraint of Constr.def
  | Drop_constraint of string

type record = { lsn : int; ops : op list }

exception Error of string

let errorf fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt
let file ~dir = Filename.concat dir "wal"

(* ------------------------- deltas ----------------------------- *)

let change ~rel ~before ~after =
  let b = Relation.tuples (Xrel.rep before)
  and a = Relation.tuples (Xrel.rep after) in
  (* Both sides are subsets of minimal representations (antichains), so
     wrapping them unsafely is sound and they roundtrip exactly. *)
  let wrap set = Xrel.unsafe_of_minimal (Relation.of_tuples set) in
  {
    rel;
    added = wrap (Tuple.Set.diff a b);
    removed = wrap (Tuple.Set.diff b a);
  }

let change_is_noop c = Xrel.is_empty c.added && Xrel.is_empty c.removed

let delta ~lsn ~rel ~before ~after =
  { lsn; ops = [ Change (change ~rel ~before ~after) ] }

let is_noop r =
  List.for_all
    (function
      | Change c -> change_is_noop c
      | Add_constraint _ | Drop_constraint _ -> false)
    r.ops

let rels r =
  List.filter_map
    (function Change c -> Some c.rel | Add_constraint _ | Drop_constraint _ -> None)
    r.ops
  |> List.sort_uniq String.compare

let apply_change cat c =
  match Catalog.find cat c.rel with
  | None -> errorf "journal references unknown relation %s" c.rel
  | Some _ ->
      (* Replay runs the same incremental discipline as the live DML
         path: on the exact before-state the recorded net delta admits
         and evicts precisely what the original statement did, and on
         any other state the insert discipline still yields a minimal
         relation — degraded, never wrong. *)
      fst
        (Catalog.apply_delta cat c.rel ~added:(Xrel.to_list c.added)
           ~removed:(Xrel.to_list c.removed))

let apply_op ?(verify_constraints = false) cat = function
  | Change c -> apply_change cat c
  | Add_constraint def ->
      if verify_constraints then Catalog.add_constraint cat def
      else Catalog.attach_constraint cat def
  | Drop_constraint name -> Catalog.drop_constraint cat name

let apply ?verify_constraints cat r =
  List.fold_left (fun cat op -> apply_op ?verify_constraints cat op) cat r.ops

(* ------------------------- framing ---------------------------- *)

let add_u32 buf n =
  for k = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * k)) land 0xff))
  done

let add_u64 buf n =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * k)) land 0xff))
  done

let add_block buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let encode_op buf = function
  | Change c ->
      Buffer.add_char buf 'C';
      add_block buf c.rel;
      add_block buf (Binary.encode c.added);
      add_block buf (Binary.encode c.removed)
  | Add_constraint def ->
      Buffer.add_char buf 'A';
      add_block buf (Constr.def_to_line def)
  | Drop_constraint name ->
      Buffer.add_char buf 'D';
      add_block buf name

let encode_payload r =
  let buf = Buffer.create 256 in
  add_u64 buf r.lsn;
  add_u32 buf (List.length r.ops);
  List.iter (encode_op buf) r.ops;
  Buffer.contents buf

let encode_frame r =
  let payload = encode_payload r in
  let buf = Buffer.create (String.length payload + 8) in
  add_block buf payload;
  add_u32 buf (Crc32.digest payload);
  Buffer.contents buf

type cursor = { data : string; mutable pos : int }

let remaining cur = String.length cur.data - cur.pos

let read_u n cur =
  let v = ref 0 in
  for k = n - 1 downto 0 do
    v := (!v lsl 8) lor Char.code cur.data.[cur.pos + k]
  done;
  cur.pos <- cur.pos + n;
  !v

let read_block cur =
  if remaining cur < 4 then errorf "truncated block length";
  let len = read_u 4 cur in
  if len < 0 || remaining cur < len then errorf "truncated block";
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let decode_op cur =
  if remaining cur < 1 then errorf "truncated op tag";
  let tag = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  match tag with
  | 'C' ->
      let rel = read_block cur in
      let decode what s =
        try Binary.decode s
        with Binary.Corrupt msg -> errorf "bad %s delta: %s" what msg
      in
      let added = decode "added" (read_block cur) in
      let removed = decode "removed" (read_block cur) in
      Change { rel; added; removed }
  | 'A' -> (
      let line = read_block cur in
      match Constr.def_of_line line with
      | Some def -> Add_constraint def
      | None -> errorf "bad constraint definition %S" line)
  | 'D' -> Drop_constraint (read_block cur)
  | c -> errorf "unknown op tag %C" c

let decode_payload payload =
  let cur = { data = payload; pos = 0 } in
  if remaining cur < 12 then errorf "truncated header";
  let lsn = read_u 8 cur in
  let n_ops = read_u 4 cur in
  if n_ops < 0 then errorf "negative op count";
  let ops = List.init n_ops (fun _ -> decode_op cur) in
  if remaining cur <> 0 then errorf "trailing payload bytes";
  { lsn; ops }

let m_appends =
  Obs.Metrics.counter ~help:"Write-ahead journal frames appended"
    "storage_wal_appends_total"

let m_append_bytes =
  Obs.Metrics.counter ~help:"Write-ahead journal bytes appended"
    "storage_wal_append_bytes_total"

let m_batches =
  Obs.Metrics.counter
    ~help:"Group-commit batches appended to the write-ahead journal"
    "storage_wal_group_batches_total"

let m_batch_records =
  Obs.Metrics.histogram
    ~help:"Records per group-commit batch appended to the journal"
    "storage_wal_group_batch_records"

let append ~io ~dir r =
  let frame = encode_frame r in
  Obs.Metrics.inc m_appends;
  Obs.Metrics.add m_append_bytes (String.length frame);
  io.Io.append_file (file ~dir) frame

let append_batch ~io ~dir rs =
  match rs with
  | [] -> ()
  | rs ->
      let buf = Buffer.create 1024 in
      List.iter (fun r -> Buffer.add_string buf (encode_frame r)) rs;
      let frames = Buffer.contents buf in
      Obs.Metrics.add m_appends (List.length rs);
      Obs.Metrics.add m_append_bytes (String.length frames);
      Obs.Metrics.inc m_batches;
      Obs.Metrics.observe m_batch_records (List.length rs);
      io.Io.append_file (file ~dir) frames

let read ~io ~dir =
  let path = file ~dir in
  if not (io.Io.file_exists path) then ([], None)
  else begin
    let data = io.Io.read_file path in
    let cur = { data; pos = 0 } in
    let torn lsn msg =
      Some
        (Printf.sprintf "journal tail dropped after lsn %d: %s" lsn msg)
    in
    let rec go acc last_lsn =
      if remaining cur = 0 then (List.rev acc, None)
      else if remaining cur < 4 then (List.rev acc, torn last_lsn "torn frame header")
      else begin
        let start = cur.pos in
        let len = read_u 4 cur in
        if len < 0 || remaining cur < len + 4 then
          (List.rev acc, torn last_lsn "torn frame")
        else begin
          let payload = String.sub cur.data cur.pos len in
          cur.pos <- cur.pos + len;
          let crc = read_u 4 cur in
          if crc <> Crc32.digest payload then
            (List.rev acc, torn last_lsn "frame checksum mismatch")
          else
            match decode_payload payload with
            | r -> go (r :: acc) r.lsn
            | exception Error msg ->
                (* A frame whose checksum matches but whose body does not
                   decode is not a torn tail — the record is corrupt. *)
                ( List.rev acc,
                  Some
                    (Printf.sprintf "corrupt journal record at byte %d: %s"
                       start msg) )
        end
      end
    in
    go [] 0
  end

let reset ~io ~dir =
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  io.Io.write_file tmp "";
  io.Io.rename tmp path;
  io.Io.fsync_dir dir
