open Nullrel

type record = { lsn : int; rel : string; added : Xrel.t; removed : Xrel.t }

exception Error of string

let errorf fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt
let file ~dir = Filename.concat dir "wal"

(* ------------------------- deltas ----------------------------- *)

let delta ~lsn ~rel ~before ~after =
  let b = Relation.tuples (Xrel.rep before)
  and a = Relation.tuples (Xrel.rep after) in
  (* Both sides are subsets of minimal representations (antichains), so
     wrapping them unsafely is sound and they roundtrip exactly. *)
  let wrap set = Xrel.unsafe_of_minimal (Relation.of_tuples set) in
  {
    lsn;
    rel;
    added = wrap (Tuple.Set.diff a b);
    removed = wrap (Tuple.Set.diff b a);
  }

let is_noop r = Xrel.is_empty r.added && Xrel.is_empty r.removed

let apply cat r =
  match Catalog.find cat r.rel with
  | None -> errorf "journal references unknown relation %s" r.rel
  | Some (_, x) ->
      let tuples = Relation.tuples (Xrel.rep x) in
      let tuples = Tuple.Set.diff tuples (Relation.tuples (Xrel.rep r.removed)) in
      let tuples = Tuple.Set.union tuples (Relation.tuples (Xrel.rep r.added)) in
      Catalog.set_relation cat r.rel (Xrel.of_tuples tuples)

(* ------------------------- framing ---------------------------- *)

let add_u32 buf n =
  for k = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * k)) land 0xff))
  done

let add_u64 buf n =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * k)) land 0xff))
  done

let add_block buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let encode_payload r =
  let buf = Buffer.create 256 in
  add_u64 buf r.lsn;
  add_block buf r.rel;
  add_block buf (Binary.encode r.added);
  add_block buf (Binary.encode r.removed);
  Buffer.contents buf

let encode_frame r =
  let payload = encode_payload r in
  let buf = Buffer.create (String.length payload + 8) in
  add_block buf payload;
  add_u32 buf (Crc32.digest payload);
  Buffer.contents buf

type cursor = { data : string; mutable pos : int }

let remaining cur = String.length cur.data - cur.pos

let read_u n cur =
  let v = ref 0 in
  for k = n - 1 downto 0 do
    v := (!v lsl 8) lor Char.code cur.data.[cur.pos + k]
  done;
  cur.pos <- cur.pos + n;
  !v

let read_block cur =
  if remaining cur < 4 then errorf "truncated block length";
  let len = read_u 4 cur in
  if len < 0 || remaining cur < len then errorf "truncated block";
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let decode_payload payload =
  let cur = { data = payload; pos = 0 } in
  if remaining cur < 8 then errorf "truncated lsn";
  let lsn = read_u 8 cur in
  let rel = read_block cur in
  let decode what s =
    try Binary.decode s
    with Binary.Corrupt msg -> errorf "bad %s delta: %s" what msg
  in
  let added = decode "added" (read_block cur) in
  let removed = decode "removed" (read_block cur) in
  if remaining cur <> 0 then errorf "trailing payload bytes";
  { lsn; rel; added; removed }

let m_appends =
  Obs.Metrics.counter ~help:"Write-ahead journal frames appended"
    "storage_wal_appends_total"

let m_append_bytes =
  Obs.Metrics.counter ~help:"Write-ahead journal bytes appended"
    "storage_wal_append_bytes_total"

let m_batches =
  Obs.Metrics.counter
    ~help:"Group-commit batches appended to the write-ahead journal"
    "storage_wal_group_batches_total"

let m_batch_records =
  Obs.Metrics.histogram
    ~help:"Records per group-commit batch appended to the journal"
    "storage_wal_group_batch_records"

let append ~io ~dir r =
  let frame = encode_frame r in
  Obs.Metrics.inc m_appends;
  Obs.Metrics.add m_append_bytes (String.length frame);
  io.Io.append_file (file ~dir) frame

let append_batch ~io ~dir rs =
  match rs with
  | [] -> ()
  | rs ->
      let buf = Buffer.create 1024 in
      List.iter (fun r -> Buffer.add_string buf (encode_frame r)) rs;
      let frames = Buffer.contents buf in
      Obs.Metrics.add m_appends (List.length rs);
      Obs.Metrics.add m_append_bytes (String.length frames);
      Obs.Metrics.inc m_batches;
      Obs.Metrics.observe m_batch_records (List.length rs);
      io.Io.append_file (file ~dir) frames

let read ~io ~dir =
  let path = file ~dir in
  if not (io.Io.file_exists path) then ([], None)
  else begin
    let data = io.Io.read_file path in
    let cur = { data; pos = 0 } in
    let torn lsn msg =
      Some
        (Printf.sprintf "journal tail dropped after lsn %d: %s" lsn msg)
    in
    let rec go acc last_lsn =
      if remaining cur = 0 then (List.rev acc, None)
      else if remaining cur < 4 then (List.rev acc, torn last_lsn "torn frame header")
      else begin
        let start = cur.pos in
        let len = read_u 4 cur in
        if len < 0 || remaining cur < len + 4 then
          (List.rev acc, torn last_lsn "torn frame")
        else begin
          let payload = String.sub cur.data cur.pos len in
          cur.pos <- cur.pos + len;
          let crc = read_u 4 cur in
          if crc <> Crc32.digest payload then
            (List.rev acc, torn last_lsn "frame checksum mismatch")
          else
            match decode_payload payload with
            | r -> go (r :: acc) r.lsn
            | exception Error msg ->
                (* A frame whose checksum matches but whose body does not
                   decode is not a torn tail — the record is corrupt. *)
                ( List.rev acc,
                  Some
                    (Printf.sprintf "corrupt journal record at byte %d: %s"
                       start msg) )
        end
      end
    in
    go [] 0
  end

let reset ~io ~dir =
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  io.Io.write_file tmp "";
  io.Io.rename tmp path;
  io.Io.fsync_dir dir
