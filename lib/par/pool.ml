(* Fixed pool of worker domains, shared process-wide.

   Design notes:
   - One task at a time. Chunk claiming is a single [fetch_and_add] on
     the task's [next] counter, so idle workers racing a finished task
     claim an out-of-range index and go back to sleep — no per-chunk
     queue, no work stealing.
   - The coordinator participates: it pulls chunks like a worker and
     runs the caller's [progress] hook between them. Fan-in waits for
     [active = 0] under the mutex, so when [run] returns no worker is
     still inside the task (required before the caller reads the
     chunk-filled output arrays).
   - Failure: the first exception (from a chunk on any domain, or from
     [progress]) is stored in the task's [fail] slot and flips the
     shared [cancel] flag; everyone else stops at the next chunk
     boundary. After the quiesce the exception is re-raised on the
     coordinator with its original backtrace. *)

let hard_cap = 16
let clamp n = max 1 (min hard_cap n)

let default_domains () =
  clamp
    (match Sys.getenv_opt "NULLREL_DOMAINS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ())

(* 0 = not resolved yet; resolved lazily so a CLI [--domains] override
   installed before the first parallel run wins over the environment.
   Atomic: session domains consult [domains ()] through the Kernel
   dispatch concurrently with the main domain (a racing first resolve
   is idempotent — both writers store the same value). *)
let configured = Atomic.make 0

let domains () =
  let n = Atomic.get configured in
  if n <> 0 then n
  else begin
    let n = default_domains () in
    ignore (Atomic.compare_and_set configured 0 n);
    Atomic.get configured
  end

let parallelizable () = domains () > 1

type task = {
  job : int -> unit;
  total : int;
  next : int Atomic.t; (* next unclaimed chunk index *)
  cancel : bool Atomic.t; (* set on first failure; checked per chunk *)
  fail : (exn * Printexc.raw_backtrace) option Atomic.t;
}

let m = Mutex.create ()
let work_ready = Condition.create ()
let work_done = Condition.create ()
let current : task option ref = ref None
let generation = ref 0 (* bumped per task so sleepers spot new work *)
let stopping = ref false
let active = ref 0 (* workers currently inside the task *)
let workers : unit Domain.t list ref = ref []
let exit_hook_installed = ref false

let m_tasks =
  Obs.Metrics.counter
    ~help:"Parallel fan-outs executed by the domain pool"
    "nullrel_par_tasks_total"

let m_chunks =
  Obs.Metrics.counter
    ~help:
      "Chunks executed under the domain pool (coordinator-run chunks and \
       inline fallbacks included)"
    "nullrel_par_chunks_total"

let g_domains =
  Obs.Metrics.gauge
    ~help:"Configured parallelism degree, coordinator included"
    "nullrel_par_domains"

let g_workers =
  Obs.Metrics.gauge ~help:"Worker domains currently alive in the pool"
    "nullrel_par_workers_live"

let record_failure t e =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set t.fail None (Some (e, bt)));
  Atomic.set t.cancel true

(* Claim and run chunks until the task is drained or cancelled. Runs
   outside the mutex; never raises. *)
let rec take_chunks t =
  if not (Atomic.get t.cancel) then begin
    let i = Atomic.fetch_and_add t.next 1 in
    if i < t.total then begin
      (try
         t.job i;
         Obs.Metrics.inc m_chunks
       with e -> record_failure t e);
      take_chunks t
    end
  end

let worker_loop () =
  let seen = ref 0 in
  Mutex.lock m;
  let rec loop () =
    if !stopping then Mutex.unlock m
    else if !generation = !seen then begin
      Condition.wait work_ready m;
      loop ()
    end
    else begin
      seen := !generation;
      match !current with
      | None -> loop ()
      | Some t ->
          (* [active] is bumped in the same critical section that
             observed the task, so the coordinator's quiesce cannot
             miss a worker that is about to start. *)
          incr active;
          Mutex.unlock m;
          take_chunks t;
          Mutex.lock m;
          decr active;
          if !active = 0 then Condition.broadcast work_done;
          loop ()
    end
  in
  loop ()

let shutdown () =
  if !workers <> [] then begin
    Mutex.lock m;
    stopping := true;
    Condition.broadcast work_ready;
    Mutex.unlock m;
    List.iter Domain.join !workers;
    workers := [];
    stopping := false;
    Obs.Metrics.set_gauge g_workers 0.
  end

let set_domains n =
  let n = clamp n in
  if n <> Atomic.get configured then begin
    Atomic.set configured n;
    (* Wrong-sized pool: tear down now, respawn lazily. *)
    if !workers <> [] && List.length !workers <> n - 1 then shutdown ()
  end

let ensure_started () =
  let want = domains () - 1 in
  if List.length !workers <> want then begin
    shutdown ();
    if want > 0 then begin
      workers := List.init want (fun _ -> Domain.spawn worker_loop);
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit shutdown
      end
    end
  end

(* True while the coordinator is inside a parallel [run]; a nested
   [run] (a chunk calling back into the pool) degrades to inline. *)
let in_task = Atomic.make false

let run_inline ~chunks ~progress job =
  for i = 0 to chunks - 1 do
    job i;
    Obs.Metrics.inc m_chunks;
    progress ()
  done

let run ~chunks ?(progress = fun () -> ()) job =
  if chunks > 0 then
    if chunks = 1 || domains () = 1 || not (Atomic.compare_and_set in_task false true)
    then run_inline ~chunks ~progress job
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set in_task false)
        (fun () ->
          ensure_started ();
          Obs.Metrics.inc m_tasks;
          Obs.Metrics.set_gauge g_domains (float_of_int (domains ()));
          Obs.Metrics.set_gauge g_workers
            (float_of_int (List.length !workers));
          let t =
            {
              job;
              total = chunks;
              next = Atomic.make 0;
              cancel = Atomic.make false;
              fail = Atomic.make None;
            }
          in
          Mutex.lock m;
          current := Some t;
          incr generation;
          Condition.broadcast work_ready;
          Mutex.unlock m;
          (* Coordinator pulls chunks too; [progress] may raise (the
             governor cancelling), which counts as a failure and stops
             the fleet at chunk boundaries. *)
          (try
             let continue = ref true in
             while !continue && not (Atomic.get t.cancel) do
               let i = Atomic.fetch_and_add t.next 1 in
               if i < t.total then begin
                 t.job i;
                 Obs.Metrics.inc m_chunks;
                 progress ()
               end
               else continue := false
             done
           with e -> record_failure t e);
          (* Quiesce: no worker may still be inside the task when the
             caller reads its output. *)
          Mutex.lock m;
          while !active > 0 do
            Condition.wait work_done m
          done;
          current := None;
          Mutex.unlock m;
          match Atomic.get t.fail with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
