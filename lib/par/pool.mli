(** A lazily-started fixed pool of worker domains with chunked
    fan-out/fan-in, sized for the pure kernels of the engine
    (minimization, subsumption, join probing).

    The pool holds [domains () - 1] workers; the calling domain (the
    {e coordinator}) is the remaining member and pulls chunks alongside
    them, so a pool of size 1 degenerates to an ordinary loop with no
    domain ever spawned. Workers are spawned on first parallel [run]
    and torn down by {!shutdown}, {!set_domains}, or [at_exit].

    Memory-safety contract for jobs: chunk [i] may only write state
    that no other chunk touches (e.g. a distinct slice of an array or a
    distinct cell), and every structure it reads must be fully built
    before [run] is called. Shared communication goes through
    [Atomic.t] cells. *)

val hard_cap : int
(** Upper bound on the parallelism degree (currently 16). *)

val default_domains : unit -> int
(** Pool size before any override: [NULLREL_DOMAINS] from the
    environment if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]; clamped to [1, hard_cap]. *)

val domains : unit -> int
(** The configured parallelism degree, including the coordinator.
    Resolved from {!default_domains} on first use. *)

val set_domains : int -> unit
(** Override the parallelism degree (clamped to [1, hard_cap]). If the
    pool is running at a different size it is torn down now and
    respawned lazily on the next parallel [run]. *)

val parallelizable : unit -> bool
(** True when [domains () > 1] — callers use this to skip building
    parallel plumbing that would only run inline. *)

val run : chunks:int -> ?progress:(unit -> unit) -> (int -> unit) -> unit
(** [run ~chunks ~progress job] executes [job 0 .. job (chunks - 1)],
    fanning the indices out over the pool, and returns once every chunk
    has finished (fan-in is a full quiesce: no worker is still inside a
    chunk when [run] returns).

    [progress] runs on the coordinator between the chunks it pulls
    itself — the hook where governed callers drain worker tick counts
    into {!Nullrel.Exec}. If [progress] (or a chunk) raises, a shared
    cancel flag stops the remaining chunks at chunk boundaries, the
    pool quiesces, and the first exception is re-raised with its
    backtrace; the pool stays usable afterwards.

    Degenerate cases run inline on the calling domain (with the same
    [progress] cadence): a single chunk, a pool of size 1, or a nested
    [run] issued from inside a chunk. *)

val shutdown : unit -> unit
(** Join all worker domains. Idempotent; the pool restarts lazily on
    the next parallel [run]. Installed via [at_exit] on first spawn. *)
