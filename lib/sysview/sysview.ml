(* The system catalog: live engine state materialized as ordinary
   x-relations. Nothing here is persisted or registered in
   Storage.Catalog — every builder computes a fresh (schema, xrel) pair
   from whatever subsystem owns the facts, and the shell/CLI splice the
   result into the Quel db for the duration of one statement. That is
   the snapshot-consistency rule (DESIGN §10): a sys_* relation is
   internally consistent (each underlying cell read exactly once while
   materializing), and two sys_* relations in one query were
   materialized at the same instant — but re-running the query reads
   the world again.

   The paper's ni carries the honest-unknown semantics throughout: a
   histogram has no single "value", an idle session has no pinned
   snapshot, a never-analyzed column has no known min/max. Those fields
   are ni, not 0 — so aggregates over sys_* relations skip them exactly
   as Table III says they should. *)

open Nullrel

module Trace = Trace

let prefix = "sys_"

let is_sys name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

(* Rows are built as (name, value) lists; Tuple.of_strings drops null
   bindings, which is exactly the ni convention. *)
let row = Tuple.of_strings
let opt_int = function Some i -> Value.Int i | None -> Value.Null
let opt_float = function Some f -> Value.Float f | None -> Value.Null

let float_or_null f = if Float.is_nan f then Value.Null else Value.Float f

let rel schema tuples = (Schema.name schema, (schema, Xrel.of_list tuples))

(* ------------------------- sys_metrics ------------------------- *)

let metrics_schema =
  Schema.make "sys_metrics"
    [
      ("NAME", Domain.Strings);
      ("KIND", Domain.Strings);
      ("VALUE", Domain.Floats);
      ("SUM", Domain.Ints);
      ("COUNT", Domain.Ints);
      ("HELP", Domain.Strings);
    ]

let series_name (i : Obs.Metrics.info) =
  i.Obs.Metrics.i_name ^ Obs.Metrics.label_string i.Obs.Metrics.i_labels

let sys_metrics () =
  let tuples =
    List.map
      (fun (i : Obs.Metrics.info) ->
        let value, sum, count =
          match i.Obs.Metrics.i_value with
          | Obs.Metrics.Counter_v v ->
              (* A counter's sum/count decomposition is not a thing: ni. *)
              (Value.Float (float_of_int v), Value.Null, Value.Null)
          | Obs.Metrics.Gauge_v v -> (Value.Float v, Value.Null, Value.Null)
          | Obs.Metrics.Histogram_v { sum; count; _ } ->
              (* A histogram has no single value: ni, query sys_histograms. *)
              (Value.Null, Value.Int sum, Value.Int count)
        in
        row
          [
            ("NAME", Value.Str (series_name i));
            ("KIND", Value.Str i.Obs.Metrics.i_kind);
            ("VALUE", value);
            ("SUM", sum);
            ("COUNT", count);
            ("HELP", Value.Str i.Obs.Metrics.i_help);
          ])
      (Obs.Metrics.snapshot ())
  in
  rel metrics_schema tuples

(* ----------------------- sys_histograms ------------------------ *)

let histograms_schema =
  Schema.make "sys_histograms"
    [
      ("NAME", Domain.Strings);
      ("BUCKET", Domain.Ints);
      ("LE", Domain.Strings);
      ("COUNT", Domain.Ints);
      ("CUMULATIVE", Domain.Ints);
    ]

let sys_histograms () =
  let tuples =
    List.concat_map
      (fun (i : Obs.Metrics.info) ->
        match i.Obs.Metrics.i_value with
        | Obs.Metrics.Histogram_v { counts; _ } ->
            let n = series_name i in
            let cumulative = ref 0 in
            List.filter_map Fun.id
              (List.init (Array.length counts) (fun b ->
                   let c = counts.(b) in
                   cumulative := !cumulative + c;
                   if c > 0 || b = Array.length counts - 1 then
                     Some
                       (row
                          [
                            ("NAME", Value.Str n);
                            ("BUCKET", Value.Int b);
                            ("LE", Value.Str (Obs.Metrics.le_string b));
                            ("COUNT", Value.Int c);
                            ("CUMULATIVE", Value.Int !cumulative);
                          ])
                   else None))
        | _ -> [])
      (Obs.Metrics.snapshot ())
  in
  rel histograms_schema tuples

(* ------------------- sys_spans / sys_slowlog ------------------- *)

let span_columns =
  [
    ("SEQ", Domain.Ints);
    ("LABEL", Domain.Strings);
    ("DEPTH", Domain.Ints);
    ("DURATION_US", Domain.Ints);
    ("TICKS", Domain.Ints);
  ]

let spans_schema = Schema.make "sys_spans" span_columns
let slowlog_schema = Schema.make "sys_slowlog" span_columns

let span_rows events =
  List.mapi
    (fun seq (e : Obs.Span.event) ->
      row
        [
          ("SEQ", Value.Int seq);
          ("LABEL", Value.Str e.Obs.Span.label);
          ("DEPTH", Value.Int e.Obs.Span.depth);
          ("DURATION_US", Value.Int (int_of_float (e.Obs.Span.duration_s *. 1e6)));
          ("TICKS", Value.Int e.Obs.Span.ticks);
        ])
    events

let sys_spans () = rel spans_schema (span_rows (Obs.Span.events ()))
let sys_slowlog () = rel slowlog_schema (span_rows (Obs.Span.slow_log ()))

(* ------------------------ sys_sessions ------------------------- *)

let sessions_schema =
  Schema.make "sys_sessions"
    [
      ("DIR", Domain.Strings);
      ("SID", Domain.Ints);
      ("STATE", Domain.Enum [ "idle"; "open"; "submitted" ]);
      ("SNAP_LSN", Domain.Ints);
      ("STAGED", Domain.Ints);
      ("DEADLINE_S", Domain.Floats);
      ("MAX_TUPLES", Domain.Ints);
      ("SEMANTICS", Domain.Enum Semantics.names);
    ]

let state_string = function
  | Session.Idle -> "idle"
  | Session.Open -> "open"
  | Session.Submitted -> "submitted"

let sys_sessions () =
  let tuples =
    List.concat_map
      (fun eng ->
        let dir = Session.engine_dir eng in
        List.map
          (fun (si : Session.session_info) ->
            row
              [
                ("DIR", Value.Str dir);
                ("SID", Value.Int si.Session.si_sid);
                ("STATE", Value.Str (state_string si.Session.si_state));
                ("SNAP_LSN", opt_int si.Session.si_snap_lsn);
                ("STAGED", opt_int si.Session.si_staged);
                ("DEADLINE_S", opt_float si.Session.si_deadline_s);
                ("MAX_TUPLES", opt_int si.Session.si_max_tuples);
                ("SEMANTICS", Value.Str si.Session.si_semantics);
              ])
          (Session.sessions_info eng))
      (Session.list_engines ())
  in
  rel sessions_schema tuples

(* ------------------------ sys_relations ------------------------ *)

let relations_schema =
  Schema.make "sys_relations"
    [
      ("NAME", Domain.Strings);
      ("ROWS", Domain.Ints);
      ("STATS", Domain.Enum [ "fresh"; "stale"; "missing" ]);
      ("STATS_ROWS", Domain.Ints);
      ("CONSTRAINTS", Domain.Ints);
      ("UNVERIFIED", Domain.Ints);
      ("SCHEMA_CRC", Domain.Strings);
      ("DATA_CRC", Domain.Strings);
    ]

let sys_relations ?dir ?io cat =
  let crcs =
    match dir with
    | None -> []
    | Some dir -> (
        try Storage.Persist.manifest_crcs ?io ~dir () with _ -> [])
  in
  let unverified = Storage.Catalog.unverified_constraints cat in
  let tuples =
    List.map
      (fun name ->
        let _, x = Storage.Catalog.get cat name in
        let status, stats_rows =
          match Storage.Catalog.stats_status cat name with
          | Storage.Catalog.Fresh t -> ("fresh", Some t.Stats.rows)
          | Storage.Catalog.Stale t -> ("stale", Some t.Stats.rows)
          | Storage.Catalog.Missing -> ("missing", None)
        in
        let involving =
          List.filter
            (fun d -> List.mem name (Constr.relations d))
            (Storage.Catalog.constraints cat)
        in
        let unverified_here =
          List.length
            (List.filter
               (fun d -> List.mem (Constr.name d) unverified)
               involving)
        in
        let schema_crc, data_crc =
          match List.assoc_opt name crcs with
          | Some (s, d) -> (Value.Str s, Value.Str d)
          | None -> (Value.Null, Value.Null)
        in
        row
          [
            ("NAME", Value.Str name);
            ("ROWS", Value.Int (Xrel.cardinal x));
            ("STATS", Value.Str status);
            ("STATS_ROWS", opt_int stats_rows);
            ("CONSTRAINTS", Value.Int (List.length involving));
            ("UNVERIFIED", Value.Int unverified_here);
            ("SCHEMA_CRC", schema_crc);
            ("DATA_CRC", data_crc);
          ])
      (Storage.Catalog.names cat)
  in
  rel relations_schema tuples

(* ------------------------- sys_columns ------------------------- *)

let columns_schema =
  Schema.make "sys_columns"
    [
      ("REL", Domain.Strings);
      ("ATTR", Domain.Strings);
      ("NULLS", Domain.Ints);
      ("DISTINCT", Domain.Ints);
      ("MIN", Domain.Ints);
      ("MAX", Domain.Ints);
    ]

(* The honest-ni showcase: a never-analyzed column's null count,
   distinct count and min/max are simply not known — every one of those
   fields is ni, and a min/max aggregate over sys_columns skips them. *)
let sys_columns cat =
  let tuples =
    List.concat_map
      (fun name ->
        let schema, _ = Storage.Catalog.get cat name in
        let stats =
          match Storage.Catalog.stats_status cat name with
          | Storage.Catalog.Fresh t | Storage.Catalog.Stale t -> Some t
          | Storage.Catalog.Missing -> None
        in
        List.map
          (fun attr ->
            let col =
              Option.bind stats (fun t -> Stats.column t attr)
            in
            row
              [
                ("REL", Value.Str name);
                ("ATTR", Value.Str (Attr.name attr));
                ( "NULLS",
                  opt_int (Option.map (fun c -> c.Stats.nulls) col) );
                ( "DISTINCT",
                  opt_int (Option.map (fun c -> c.Stats.distinct) col) );
                ("MIN", opt_int (Option.bind col (fun c -> c.Stats.min_int)));
                ("MAX", opt_int (Option.bind col (fun c -> c.Stats.max_int)));
              ])
          (Schema.attrs schema))
      (Storage.Catalog.names cat)
  in
  rel columns_schema tuples

(* --------------------------- sys_wal --------------------------- *)

let wal_schema =
  Schema.make "sys_wal"
    [
      ("LSN", Domain.Ints);
      ("SEQ", Domain.Ints);
      ("OP", Domain.Enum [ "change"; "add_constraint"; "drop_constraint" ]);
      ("REL", Domain.Strings);
      ("ADDED", Domain.Ints);
      ("REMOVED", Domain.Ints);
    ]

let sys_wal ?dir ?(io = Storage.Io.real) () =
  let records =
    match dir with
    | None -> []
    | Some dir -> ( try fst (Storage.Wal.read ~io ~dir) with _ -> [])
  in
  let tuples =
    List.concat_map
      (fun (r : Storage.Wal.record) ->
        List.mapi
          (fun seq op ->
            let op_s, rel_v, added, removed =
              match op with
              | Storage.Wal.Change c ->
                  ( "change",
                    Value.Str c.Storage.Wal.rel,
                    Value.Int (Xrel.cardinal c.Storage.Wal.added),
                    Value.Int (Xrel.cardinal c.Storage.Wal.removed) )
              | Storage.Wal.Add_constraint d ->
                  (* DDL moves no tuples: the delta columns are ni. *)
                  ("add_constraint", Value.Str (Constr.name d), Value.Null,
                   Value.Null)
              | Storage.Wal.Drop_constraint n ->
                  ("drop_constraint", Value.Str n, Value.Null, Value.Null)
            in
            row
              [
                ("LSN", Value.Int r.Storage.Wal.lsn);
                ("SEQ", Value.Int seq);
                ("OP", Value.Str op_s);
                ("REL", rel_v);
                ("ADDED", added);
                ("REMOVED", removed);
              ])
          r.Storage.Wal.ops)
      records
  in
  rel wal_schema tuples

(* ----------------------- sys_constraints ----------------------- *)

let constraints_schema =
  Schema.make "sys_constraints"
    [
      ("NAME", Domain.Strings);
      ("KIND", Domain.Enum [ "unique"; "not_null"; "foreign_key" ]);
      ("REL", Domain.Strings);
      ("ATTRS", Domain.Strings);
      ("TARGET", Domain.Strings);
      ("ACTION", Domain.Enum [ "restrict"; "cascade"; "set null" ]);
      ("VERIFIED", Domain.Bools);
    ]

let sys_constraints cat =
  let unverified = Storage.Catalog.unverified_constraints cat in
  let tuples =
    List.map
      (fun d ->
        let kind, relname, attrs, target, action =
          match d with
          | Constr.Unique { rel; attrs; _ } ->
              ( "unique",
                rel,
                String.concat "," (List.map Attr.name attrs),
                Value.Null,
                Value.Null )
          | Constr.Not_null { rel; attr; _ } ->
              ("not_null", rel, Attr.name attr, Value.Null, Value.Null)
          | Constr.Foreign_key { rel; target; pairs; on_delete; _ } ->
              ( "foreign_key",
                rel,
                String.concat "," (List.map (fun (l, _) -> Attr.name l) pairs),
                Value.Str target,
                Value.Str (Constr.action_to_string on_delete) )
        in
        row
          [
            ("NAME", Value.Str (Constr.name d));
            ("KIND", Value.Str kind);
            ("REL", Value.Str relname);
            ("ATTRS", Value.Str attrs);
            ("TARGET", target);
            ("ACTION", action);
            ( "VERIFIED",
              Value.Bool (not (List.mem (Constr.name d) unverified)) );
          ])
      (Storage.Catalog.constraints cat)
  in
  rel constraints_schema tuples

(* --------------------- sys_metrics_history --------------------- *)

let history_schema =
  Schema.make "sys_metrics_history"
    [
      ("SEQ", Domain.Ints);
      ("TICKS", Domain.Ints);
      ("TIME", Domain.Floats);
      ("NAME", Domain.Strings);
      ("VALUE", Domain.Floats);
    ]

let sys_metrics_history () =
  let tuples =
    List.concat_map
      (fun (s : Obs.History.snap) ->
        List.map
          (fun (name, v) ->
            row
              [
                ("SEQ", Value.Int s.Obs.History.seq);
                ("TICKS", Value.Int s.Obs.History.ticks);
                ("TIME", Value.Float s.Obs.History.time);
                ("NAME", Value.Str name);
                (* nan marks a quantile of a histogram that had no
                   observations at snapshot time: unknown, hence ni. *)
                ("VALUE", float_or_null v);
              ])
          s.Obs.History.series)
      (Obs.History.entries ())
  in
  rel history_schema tuples

(* -------------------------- assembly --------------------------- *)

let names =
  [
    "sys_metrics";
    "sys_metrics_history";
    "sys_histograms";
    "sys_spans";
    "sys_slowlog";
    "sys_sessions";
    "sys_relations";
    "sys_columns";
    "sys_wal";
    "sys_constraints";
  ]

let db ?dir ?io cat =
  [
    sys_metrics ();
    sys_metrics_history ();
    sys_histograms ();
    sys_spans ();
    sys_slowlog ();
    sys_sessions ();
    sys_relations ?dir ?io cat;
    sys_columns cat;
    sys_wal ?dir ?io ();
    sys_constraints cat;
  ]

let schemas =
  [
    metrics_schema;
    history_schema;
    histograms_schema;
    spans_schema;
    slowlog_schema;
    sessions_schema;
    relations_schema;
    columns_schema;
    wal_schema;
    constraints_schema;
  ]
