(* Structured trace export: span closures and governed-abort events as
   JSON Lines. Zero dependencies — the JSON subset emitted here is
   strings, numbers, and flat objects, so a hand-rolled escaper is the
   whole serializer. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers may not be nan/inf; those become null. %.17g
   round-trips every finite float exactly. *)
let number f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else Printf.sprintf "%.17g" f

(* Abort events (governed deadline/budget kills, session conflicts,
   constraint violations) recorded by the CLI and shell as they map
   errors to exit codes. Bounded so a pathological loop cannot grow the
   process: oldest events are dropped past [abort_cap]. *)
type abort = { at : float; kind : string; detail : string }

let abort_cap = 1024
let aborts : abort list ref = ref []
let n_aborts = ref 0

let note_abort ~kind ~detail =
  let a = { at = Unix.gettimeofday (); kind; detail } in
  aborts := a :: (if !n_aborts >= abort_cap then [] else !aborts);
  n_aborts := (if !n_aborts >= abort_cap then 1 else !n_aborts + 1)

let clear_aborts () =
  aborts := [];
  n_aborts := 0

let span_line (e : Obs.Span.event) =
  Printf.sprintf
    {|{"type":"span","label":"%s","depth":%d,"duration_s":%s,"ticks":%d}|}
    (escape e.Obs.Span.label) e.Obs.Span.depth
    (number e.Obs.Span.duration_s)
    e.Obs.Span.ticks

let slow_line (e : Obs.Span.event) =
  Printf.sprintf
    {|{"type":"slow","label":"%s","depth":%d,"duration_s":%s,"ticks":%d}|}
    (escape e.Obs.Span.label) e.Obs.Span.depth
    (number e.Obs.Span.duration_s)
    e.Obs.Span.ticks

let abort_line (a : abort) =
  Printf.sprintf {|{"type":"abort","at":%s,"kind":"%s","detail":"%s"}|}
    (number a.at) (escape a.kind) (escape a.detail)

let dump () =
  let buf = Buffer.create 1024 in
  let line l =
    Buffer.add_string buf l;
    Buffer.add_char buf '\n'
  in
  List.iter (fun e -> line (span_line e)) (Obs.Span.events ());
  List.iter (fun e -> line (slow_line e)) (Obs.Span.slow_log ());
  List.iter (fun a -> line (abort_line a)) (List.rev !aborts);
  Buffer.contents buf

(* Atomic like the Prometheus dump: stage then rename, so a reader (or
   a crash mid-exit) never sees half a file. *)
let write_file path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (dump ());
  close_out oc;
  Sys.rename tmp path
