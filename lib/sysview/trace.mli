(** Structured trace export as JSON Lines.

    Each line is one flat JSON object:
    - [{"type":"span","label":s,"depth":n,"duration_s":x,"ticks":n}] —
      a span closure from the {!Obs.Span} event ring;
    - [{"type":"slow","label":s,"depth":n,"duration_s":x,"ticks":n}] —
      an entry of the slow-query log;
    - [{"type":"abort","at":t,"kind":s,"detail":s}] — a governed abort
      or error the CLI/shell mapped to an exit code, [at] in Unix
      seconds.

    The CLI's [--trace-file PATH] dumps this on exit (including
    governed aborts — the dump runs from [at_exit]). *)

val note_abort : kind:string -> detail:string -> unit
(** Record an abort event (bounded: the oldest events beyond an
    internal cap are dropped). *)

val clear_aborts : unit -> unit

val dump : unit -> string
(** The full JSONL document: spans, slow-log entries, then aborts in
    the order recorded. *)

val write_file : string -> unit
(** {!dump} to a file, staged and renamed so the file is never seen
    half-written. *)

val escape : string -> string
(** JSON string-body escaping, exposed for tests. *)
