(** The system catalog: live engine state as queryable x-relations.

    Every [sys_*] relation is {e virtual}: {!db} computes fresh
    [(schema, xrel)] pairs from the owning subsystems (the {!Obs}
    registry, the {!Session} engine registry, {!Storage.Catalog}
    freshness stamps, the journal, constraint declarations) and the
    shell/CLI splice them into the Quel database for the duration of
    one statement. Nothing is persisted, nothing registered in
    {!Storage.Catalog} — the namespace is read-only by construction
    (and {!Dml} rejects [sys_]-prefixed write targets).

    {b Snapshot-consistency rule} (DESIGN §10): within one
    materialization each underlying cell is read exactly once, so a
    row never shows a torn value and counters are monotone across
    successive materializations; two [sys_*] relations joined in one
    query describe the same instant. Unknown-by-construction fields
    are the paper's [ni]: the "value" of a histogram, the pinned
    snapshot of an idle session, the staged shape of an in-flight
    transaction, the min/max of a never-analyzed column, the CRC of a
    relation with no durable checkpoint.

    The relations:
    - [sys_metrics](NAME, KIND, VALUE, SUM, COUNT, HELP)
    - [sys_metrics_history](SEQ, TICKS, TIME, NAME, VALUE) — the
      {!Obs.History} ring flattened; histogram series appear as
      [name_sum]/[name_count]/[name_p50]/[name_p99].
    - [sys_histograms](NAME, BUCKET, LE, COUNT, CUMULATIVE)
    - [sys_spans] / [sys_slowlog](SEQ, LABEL, DEPTH, DURATION_US, TICKS)
    - [sys_sessions](DIR, SID, STATE, SNAP_LSN, STAGED, DEADLINE_S,
      MAX_TUPLES)
    - [sys_relations](NAME, ROWS, STATS, STATS_ROWS, CONSTRAINTS,
      UNVERIFIED, SCHEMA_CRC, DATA_CRC)
    - [sys_columns](REL, ATTR, NULLS, DISTINCT, MIN, MAX)
    - [sys_wal](LSN, SEQ, OP, REL, ADDED, REMOVED)
    - [sys_constraints](NAME, KIND, REL, ATTRS, TARGET, ACTION,
      VERIFIED) *)

open Nullrel

module Trace = Trace

val names : string list
(** Every virtual relation name, in {!db} order. *)

val is_sys : string -> bool
(** True on names in the reserved [sys_] prefix. *)

val db :
  ?dir:string ->
  ?io:Storage.Io.t ->
  Storage.Catalog.t ->
  (string * (Schema.t * Xrel.t)) list
(** Materialize the whole system catalog against [cat], in the shape
    {!Quel.Resolve} consumes — append to [Storage.Catalog.to_db cat]
    before evaluating. [dir] (the durable directory, when the catalog
    is disk-backed) enables [sys_wal] rows and the CRC columns of
    [sys_relations]; without it those fields are [ni]/empty. *)

val schemas : Schema.t list
(** The schemas alone (for [.schema sys_*] and the manual). *)

(** Individual builders, exposed for tests and the shell's [.monitor]. *)

val sys_metrics : unit -> string * (Schema.t * Xrel.t)
val sys_metrics_history : unit -> string * (Schema.t * Xrel.t)
val sys_histograms : unit -> string * (Schema.t * Xrel.t)
val sys_spans : unit -> string * (Schema.t * Xrel.t)
val sys_slowlog : unit -> string * (Schema.t * Xrel.t)
val sys_sessions : unit -> string * (Schema.t * Xrel.t)

val sys_relations :
  ?dir:string ->
  ?io:Storage.Io.t ->
  Storage.Catalog.t ->
  string * (Schema.t * Xrel.t)

val sys_columns : Storage.Catalog.t -> string * (Schema.t * Xrel.t)

val sys_wal :
  ?dir:string -> ?io:Storage.Io.t -> unit -> string * (Schema.t * Xrel.t)

val sys_constraints : Storage.Catalog.t -> string * (Schema.t * Xrel.t)
