(* Ambient metrics registry. Counters and histograms are atomic so
   worker domains in the Par pool and session domains in the Session
   engine can update them concurrently; an update is still just a
   load, a branch on [enabled], and lock-free RMWs. Gauges stay plain
   mutable fields — they are only written under the writer's own
   serialization (the coordinator domain, or the session engine's
   lock). Registration, dumps and span bookkeeping remain
   coordinator-only. *)

let enabled = ref false
let hot = ref false
let open_spans = ref 0

(* Fired when [hot] flips, so a lower layer can fold the obs check into
   a fast-path compare it already performs (Nullrel.Exec swaps its
   ambient sentinel). Obs cannot depend on that layer, hence a hook. *)
let on_hot_change : (bool -> unit) ref = ref ignore

let recompute_hot () =
  let h = !enabled || !open_spans > 0 in
  if h <> !hot then begin
    hot := h;
    !on_hot_change h
  end

let set_enabled b =
  enabled := b;
  recompute_hot ()

let is_enabled () = !enabled

let spans_opened () =
  incr open_spans;
  recompute_hot ()

let spans_closed () =
  if !open_spans > 0 then decr open_spans;
  recompute_hot ()

type counter = int Atomic.t
type gauge = { mutable g : float }

(* 63 log2 buckets cover every non-negative OCaml int: bucket 0 holds
   v <= 0, bucket i (1 <= i <= 62) holds values with exactly i
   significant bits, i.e. 2^(i-1) <= v <= 2^i - 1. *)
let buckets = 63

type histogram = {
  counts : int Atomic.t array; (* length [buckets] *)
  sum : int Atomic.t;
  n : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

type entry = {
  name : string;
  labels : (string * string) list;
  help : string;
  metric : metric;
}

(* Registration happens at module-load time or from shell commands, not
   in hot loops, so a simple list scan is fine. Kept in registration
   order; dumps group consecutive same-name entries into one family. *)
let registry : entry list ref = ref []

let kind_of = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let find name labels =
  List.find_opt (fun e -> e.name = name && e.labels = labels) !registry

let register name labels help kind make =
  let mismatch other =
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s registered as both %s and %s" name
         other kind)
  in
  match find name labels with
  | Some e ->
      if kind_of e.metric <> kind then mismatch (kind_of e.metric);
      e.metric
  | None ->
      (match List.find_opt (fun e -> e.name = name) !registry with
      | Some e when kind_of e.metric <> kind -> mismatch (kind_of e.metric)
      | _ -> ());
      let metric = make () in
      registry := !registry @ [ { name; labels; help; metric } ];
      metric

let counter ?(labels = []) ~help name =
  match register name labels help "counter" (fun () -> C (Atomic.make 0)) with
  | C c -> c
  | _ -> assert false

let gauge ?(labels = []) ~help name =
  match register name labels help "gauge" (fun () -> G { g = 0. }) with
  | G g -> g
  | _ -> assert false

let histogram ?(labels = []) ~help name =
  match
    register name labels help "histogram" (fun () ->
        H
          {
            counts = Array.init buckets (fun _ -> Atomic.make 0);
            sum = Atomic.make 0;
            n = Atomic.make 0;
          })
  with
  | H h -> h
  | _ -> assert false

let inc c = if !enabled then Atomic.incr c
let add c n = if !enabled then ignore (Atomic.fetch_and_add c n)
let set_gauge g v = if !enabled then g.g <- v

let bucket_index v =
  if v <= 0 then 0
  else
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    bits 0 v

let observe h v =
  if !enabled then begin
    Atomic.incr h.counts.(bucket_index v);
    ignore (Atomic.fetch_and_add h.sum v);
    Atomic.incr h.n
  end

let counter_value c = Atomic.get c
let gauge_value g = g.g
let bucket_count h i = Atomic.get h.counts.(i)
let histogram_sum h = Atomic.get h.sum
let histogram_count h = Atomic.get h.n

let reset () =
  List.iter
    (fun e ->
      match e.metric with
      | C c -> Atomic.set c 0
      | G g -> g.g <- 0.
      | H h ->
          Array.iter (fun c -> Atomic.set c 0) h.counts;
          Atomic.set h.sum 0;
          Atomic.set h.n 0)
    !registry

(* Upper bound of bucket i as a Prometheus [le] string: bucket 0 is
   le="0", bucket i is le="2^i - 1", the last is +Inf. *)
let le_string i =
  if i = 0 then "0"
  else if i >= buckets - 1 then "+Inf"
  else string_of_int ((1 lsl i) - 1)

(* Prometheus label-value escaping is its own dialect: only backslash,
   double-quote and newline become escape sequences; every other byte
   is emitted verbatim. OCaml's %S is close but wrong — it writes tabs
   as backslash-t and non-ASCII bytes as decimal escapes, both of which
   scrapers reject as invalid exposition lines. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text allows [\\] and [\n] escapes only (no quoting). *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let label_string_extra labels extra =
  label_string (labels @ [ extra ])

let dump_prometheus () =
  let buf = Buffer.create 1024 in
  let seen_family = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem seen_family e.name) then begin
        Hashtbl.add seen_family e.name ();
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" e.name (escape_help e.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" e.name (kind_of e.metric))
      end;
      match e.metric with
      | C c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" e.name (label_string e.labels)
               (Atomic.get c))
      | G g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %g\n" e.name (label_string e.labels) g.g)
      | H h ->
          let cumulative = ref 0 in
          for i = 0 to buckets - 1 do
            let c = Atomic.get h.counts.(i) in
            cumulative := !cumulative + c;
            (* Elide empty interior buckets to keep dumps readable; the
               +Inf bucket always appears so the series is well formed. *)
            if c > 0 || i = buckets - 1 then
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" e.name
                   (label_string_extra e.labels ("le", le_string i))
                   !cumulative)
          done;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %d\n" e.name (label_string e.labels)
               (Atomic.get h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" e.name (label_string e.labels)
               (Atomic.get h.n)))
    !registry;
  Buffer.contents buf

(* Point-in-time view of one registry entry. Each atomic is read once,
   so within a single [snapshot] every counter value is a real value the
   counter held; there is no torn read of an individual metric. *)
type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { sum : int; count : int; counts : int array }

type info = {
  i_name : string;
  i_labels : (string * string) list;
  i_help : string;
  i_kind : string;
  i_value : value_snapshot;
}

let snapshot () =
  List.map
    (fun e ->
      let v =
        match e.metric with
        | C c -> Counter_v (Atomic.get c)
        | G g -> Gauge_v g.g
        | H h ->
            Histogram_v
              {
                sum = Atomic.get h.sum;
                count = Atomic.get h.n;
                counts = Array.map Atomic.get h.counts;
              }
      in
      {
        i_name = e.name;
        i_labels = e.labels;
        i_help = e.help;
        i_kind = kind_of e.metric;
        i_value = v;
      })
    !registry

(* Quantile estimate from per-bucket counts: the upper bound of the
   first bucket whose cumulative count reaches q of the total. Log2
   buckets make this exact to within 2x, which is all a p99-over-time
   series needs. *)
let quantile_of_counts counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then None
  else
    let target =
      let t = int_of_float (ceil (q *. float_of_int total)) in
      if t < 1 then 1 else if t > total then total else t
    in
    let rec go i cum =
      if i >= Array.length counts then None
      else
        let cum = cum + counts.(i) in
        if cum >= target then
          Some (if i = 0 then 0. else float_of_int ((1 lsl i) - 1))
        else go (i + 1) cum
    in
    go 0 0

let dump_sexp () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "(";
  List.iter
    (fun e ->
      let labels =
        String.concat " "
          (List.map (fun (k, v) -> Printf.sprintf "(%s %S)" k v) e.labels)
      in
      let value =
        match e.metric with
        | C c -> string_of_int (Atomic.get c)
        | G g -> Printf.sprintf "%g" g.g
        | H h ->
            Printf.sprintf "(sum %d) (count %d)" (Atomic.get h.sum)
              (Atomic.get h.n)
      in
      Buffer.add_string buf
        (Printf.sprintf "\n (%s (%s) %s %s)" e.name labels
           (kind_of e.metric) value))
    !registry;
  Buffer.add_string buf ")\n";
  Buffer.contents buf
