(* Bounded ring of periodic metric snapshots, driven by governor ticks
   from Nullrel.Exec. Single-writer: [charge] is only called from the
   main domain (the Exec call site guards with [Domain.is_main_domain]),
   so the ring needs no lock. Readers (sysview's sys_metrics_history)
   observe the atomic write index and copy immutable snapshot records;
   a concurrent reader can at worst see one snapshot fewer, never a
   torn record. *)

let enabled = ref false

(* Ticks between snapshots. Large enough that a snapshot (a registry
   walk) is amortized to noise against the work that generated the
   ticks. *)
let interval = ref 50_000
let default_capacity = 64
let capacity_ref = ref default_capacity

type snap = {
  seq : int;
  ticks : int;  (* cumulative ticks charged when the snapshot was taken *)
  time : float;  (* Unix.gettimeofday at snapshot *)
  series : (string * float) list;
      (* flattened metric series: counters and gauges by exported name;
         histograms contribute name_sum/_count/_p50/_p99 *)
}

let ring : snap option array ref = ref (Array.make default_capacity None)

let widx = Atomic.make 0
let acc = ref 0
let total_ticks = ref 0

let set_enabled b = enabled := b

let configure ?interval:(i : int option) ?capacity () =
  (match i with Some i when i > 0 -> interval := i | _ -> ());
  match capacity with
  | Some c when c > 0 && c <> Array.length !ring ->
      capacity_ref := c;
      ring := Array.make c None;
      Atomic.set widx 0
  | _ -> ()

let capacity () = !capacity_ref

let clear () =
  Array.fill !ring 0 (Array.length !ring) None;
  Atomic.set widx 0;
  acc := 0;
  total_ticks := 0

(* Render a registry entry's exported series name: the metric name plus
   its label set in Prometheus syntax, so joins against a live
   [sys_metrics] row are string-equal on NAME. *)
let series_name (i : Metrics.info) = i.Metrics.i_name ^ Metrics.label_string i.Metrics.i_labels

let flatten (infos : Metrics.info list) =
  List.concat_map
    (fun (i : Metrics.info) ->
      let n = series_name i in
      match i.Metrics.i_value with
      | Metrics.Counter_v v -> [ (n, float_of_int v) ]
      | Metrics.Gauge_v v -> [ (n, v) ]
      | Metrics.Histogram_v { sum; count; counts } ->
          let q p =
            match Metrics.quantile_of_counts counts p with
            | Some v -> v
            | None -> nan
          in
          [
            (n ^ "_sum", float_of_int sum);
            (n ^ "_count", float_of_int count);
            (n ^ "_p50", q 0.5);
            (n ^ "_p99", q 0.99);
          ])
    infos

let snap_now () =
  if not !enabled then ()
  else begin
    let w = Atomic.get widx in
  let s =
    {
      seq = w;
      ticks = !total_ticks;
      time = Unix.gettimeofday ();
      series = flatten (Metrics.snapshot ());
    }
  in
    let r = !ring in
    r.(w mod Array.length r) <- Some s;
    Atomic.set widx (w + 1)
  end

let charge c =
  if !enabled then begin
    total_ticks := !total_ticks + c;
    acc := !acc + c;
    if !acc >= !interval then begin
      acc := 0;
      snap_now ()
    end
  end

let entries () =
  let r = !ring in
  let cap = Array.length r in
  let w = Atomic.get widx in
  let n = if w < cap then w else cap in
  let out = ref [] in
  for k = 0 to n - 1 do
    (* newest-first index, prepend so the result is oldest-first *)
    match r.((w - 1 - k) mod cap) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  !out
