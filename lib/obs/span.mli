(** Span-based tracing with inclusive tick accounting.

    A span is an interval on the ambient span stack. While it is open,
    {!charge} (called from {!Nullrel.Exec.tick} via the
    {!Metrics.hot} branch) accumulates governor ticks into it; when it
    closes, its inclusive total (own ticks plus children's) is folded
    into its parent, an event is appended to a fixed-size ring buffer,
    and — if the span outlasted the slow-query threshold — to the slow
    log.

    Two entry points with different gating:
    - {!with_span} is the fire-and-forget instrumentation hook: when
      tracing is disabled it is a single branch and runs [f] directly.
    - {!timed} always measures and returns the measurement; it is what
      [.explain analyze] uses, so analysis works without globally
      enabling tracing. *)

type measure = { duration_s : float; ticks : int }
(** [ticks] is inclusive: the span's own charges plus its children's. *)

val set_enabled : bool -> unit
(** Gates {!with_span} and event/slow-log recording. *)

val is_enabled : unit -> bool

val charge : int -> unit
(** Charge governor ticks to the innermost open span, if any. *)

val with_span : string -> (unit -> 'a) -> 'a
(** One branch and a direct call when tracing is disabled. When
    enabled, measures [f] and records an event. Exception-safe: the
    span closes (and records) even when [f] raises. *)

val timed : string -> (unit -> 'a) -> 'a * measure
(** Always measures, regardless of {!set_enabled}. Records events only
    when enabled. Exception-safe like {!with_span}. *)

val current_label : unit -> string option
(** Label of the innermost open span ([None] when the stack is empty);
    for tests asserting that spans close under exceptions. *)

(** {1 Event ring buffer} *)

type event = {
  label : string;
  depth : int;  (** nesting depth at close time, outermost = 0 *)
  duration_s : float;
  ticks : int;
}

val events : unit -> event list
(** Most recent span closures, oldest first (ring capacity {!ring_capacity}). *)

val ring_capacity : int
val clear_events : unit -> unit

(** {1 Slow-query log} *)

val set_slow_threshold : float option -> unit
(** [Some seconds] records spans of depth 0 lasting at least that long;
    [None] (the default) disables the slow log. *)

val slow_threshold : unit -> float option
val slow_log : unit -> event list
val clear_slow_log : unit -> unit

(** {1 Test support} *)

val set_clock : (unit -> float) option -> unit
(** Override the monotonic clock ([None] restores the default); tests
    install [Some (fun () -> 0.)] for deterministic durations. *)
