(** Bounded ring of periodic metric snapshots ("the flight recorder").

    {!Nullrel.Exec.tick} charges governor ticks here from its observed
    branch — main domain only, so the ring is single-writer and
    lock-free. Every {!val-interval} ticks a snapshot of the whole
    {!Metrics} registry is pushed; the last {!capacity} snapshots are
    retained and exposed by sysview as [sys_metrics_history], making
    rates and p99-over-time computable by ordinary Quel queries.

    Disabled by default ({!enabled} = false): when off, {!charge} is a
    single predicted branch, which is what bench E24 gates (<3%
    overhead with history off). *)

type snap = {
  seq : int;  (** monotonically increasing snapshot number *)
  ticks : int;  (** cumulative ticks charged when the snapshot was taken *)
  time : float;  (** [Unix.gettimeofday] at snapshot *)
  series : (string * float) list;
      (** flattened metric series: counters/gauges under their exported
          name (with Prometheus-style label suffix); each histogram
          contributes [name_sum], [name_count], [name_p50], [name_p99]
          (quantiles are [nan] when no observations exist — surfaced as
          [ni] by sysview). *)
}

val enabled : bool ref
(** Kill switch consulted by every {!charge}. *)

val set_enabled : bool -> unit

val configure : ?interval:int -> ?capacity:int -> unit -> unit
(** Adjust ticks-per-snapshot (default 50000) and ring capacity
    (default 64). Changing capacity clears the ring. *)

val capacity : unit -> int

val charge : int -> unit
(** Accumulate ticks toward the next snapshot; take one when the
    accumulated count reaches the interval. Must only be called from
    the main domain (the Exec call site guarantees this). *)

val snap_now : unit -> unit
(** Force an immediate snapshot regardless of the tick accumulator —
    used by the shell's [.monitor] and by tests. A no-op while the
    recorder is disabled, like {!charge}. *)

val entries : unit -> snap list
(** Retained snapshots, oldest first. Safe to call from any domain:
    records are immutable; a racing reader sees at worst one snapshot
    fewer. *)

val clear : unit -> unit
(** Drop all snapshots and reset the accumulators (not [seq]-preserving:
    the next snapshot restarts at 0). *)
