(** Process-wide metrics: monotonic counters, gauges, and log2-bucketed
    histograms in one registry, exported as Prometheus text format and
    as s-expressions.

    The registry is ambient. Counters and histograms are domain-safe
    ([Atomic.t] cells, so the {!Par} pool's worker domains and the
    session engine's committer — which runs on whichever domain led
    the flush — may update them concurrently); an update is a load, a
    branch, and lock-free read-modify-writes. Gauges, registration,
    resets and dumps remain coordinator-only (or otherwise serialized
    by their caller, as the session engine's lock does for its
    gauges).
    Instrumentation is {e disabled by default}; every update first
    consults {!enabled}, so an instrumented hot loop pays one predicted
    branch when observability is off.

    Registration is idempotent: asking for a metric that already exists
    (same name and label set) returns the existing one, so modules can
    register at load time or lazily from hot paths without
    coordination. *)

type counter
type gauge
type histogram

val enabled : bool ref
(** The master switch consulted by every update. Prefer
    {!set_enabled}; the ref is exposed so hot paths can guard derived
    work (e.g. computing a cardinality only to observe it). *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val hot : bool ref
(** True when any instrumentation consumer is live: metrics enabled or
    at least one span open (maintained by {!Span} via
    {!spans_opened}/{!spans_closed}). The single branch that
    {!Nullrel.Exec.tick} pays when observability is off. *)

val spans_opened : unit -> unit
val spans_closed : unit -> unit
(** Called by {!Span} to keep {!hot} in sync with the span stack. *)

val on_hot_change : (bool -> unit) ref
(** Invoked with the new value whenever {!hot} flips. Lets a lower
    layer that cannot be depended upon here (the {!Nullrel.Exec}
    governor) fold the observability check into a compare its fast
    path already performs. *)

(** {1 Registration} *)

val counter :
  ?labels:(string * string) list -> help:string -> string -> counter

val gauge : ?labels:(string * string) list -> help:string -> string -> gauge

val histogram :
  ?labels:(string * string) list -> help:string -> string -> histogram

(** {1 Updates (one branch when disabled)} *)

val inc : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> float -> unit
val observe : histogram -> int -> unit

(** {1 Reads (for tests and dumps)} *)

val counter_value : counter -> int
val gauge_value : gauge -> float

val bucket_index : int -> int
(** [bucket_index v] is the log2 bucket of [v]: 0 for [v <= 0],
    otherwise the number of significant bits of [v] (1 -> 1, 2..3 -> 2,
    4..7 -> 3, ..., [max_int] -> 62). *)

val bucket_count : histogram -> int -> int
(** Observations landed in the bucket with the given index. *)

val histogram_sum : histogram -> int
val histogram_count : histogram -> int

(** {1 Introspection}

    Point-in-time view of the whole registry, consumed by
    {!Obs.History} and the sysview virtual relations. Each atomic is
    read exactly once per snapshot, so an individual metric's value is
    never torn; distinct metrics may be skewed by concurrent updates
    (see DESIGN on the snapshot-consistency rule). *)

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { sum : int; count : int; counts : int array }

type info = {
  i_name : string;
  i_labels : (string * string) list;
  i_help : string;
  i_kind : string;  (** "counter" | "gauge" | "histogram" *)
  i_value : value_snapshot;
}

val snapshot : unit -> info list
(** Every registered metric with its current value, in registration
    order. *)

val quantile_of_counts : int array -> float -> float option
(** [quantile_of_counts counts q] estimates the q-quantile (0..1) of a
    log2-bucketed histogram given its per-bucket counts: the upper
    bound of the first bucket whose cumulative count reaches q of the
    total. [None] when no observations were recorded. *)

val le_string : int -> string
(** Upper bound of bucket [i] as the Prometheus [le] label: "0",
    ["2^i - 1"], or "+Inf" for the last bucket. *)

val buckets : int
(** Number of histogram buckets (63: one per possible bit count). *)

val label_string : (string * string) list -> string
(** Prometheus-style rendering of a label set: empty string for no
    labels, otherwise [{k="v",...}] with values escaped. Used to build
    stable series names shared by dumps, {!History} and sysview. *)

val escape_label_value : string -> string
(** Prometheus label-value escaping: only backslash, double-quote and
    newline become escape sequences; every other byte passes through
    verbatim (unlike OCaml's [%S]). *)

(** {1 Registry-wide operations} *)

val reset : unit -> unit
(** Zeroes every registered metric. Registration survives: the same
    metric values restart from 0; names, helps and labels are kept. *)

val dump_prometheus : unit -> string
(** Prometheus text format: one [# HELP]/[# TYPE] pair per metric
    family, one sample line per registered counter/gauge, and the
    cumulative [_bucket]/[_sum]/[_count] series per histogram. *)

val dump_sexp : unit -> string
(** The same registry as one s-expression,
    [((name ((label value) ...) kind value) ...)]. *)
