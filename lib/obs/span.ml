type measure = { duration_s : float; ticks : int }

type span = {
  label : string;
  start : float;
  mutable self_ticks : int;
  mutable child_ticks : int;
  parent : span option;
  depth : int;
}

type event = { label : string; depth : int; duration_s : float; ticks : int }

let enabled = ref false

(* No [hot] bookkeeping here: with no span open there is nothing to
   charge, and {!Metrics.spans_opened}/[spans_closed] flip [hot] as
   the stack grows and empties. *)
let set_enabled b = enabled := b

let is_enabled () = !enabled
let current : span option ref = ref None

let charge cost =
  match !current with
  | None -> ()
  | Some s -> s.self_ticks <- s.self_ticks + cost

let current_label () =
  match !current with None -> None | Some s -> Some s.label

let default_clock () = Unix.gettimeofday ()
let clock = ref default_clock
let set_clock = function None -> clock := default_clock | Some f -> clock := f

let ring_capacity = 256
let ring : event option array = Array.make ring_capacity None
let ring_pos = ref 0
let slow_capacity = 64
let slow : event list ref = ref []
let slow_threshold_ref : float option ref = ref None

let set_slow_threshold t = slow_threshold_ref := t
let slow_threshold () = !slow_threshold_ref

let clear_events () =
  Array.fill ring 0 ring_capacity None;
  ring_pos := 0

let clear_slow_log () = slow := []

let events () =
  let out = ref [] in
  for i = ring_capacity - 1 downto 0 do
    match ring.((!ring_pos + i) mod ring_capacity) with
    | None -> ()
    | Some e -> out := e :: !out
  done;
  !out

let slow_log () = List.rev !slow

let record ev =
  ring.(!ring_pos) <- Some ev;
  ring_pos := (!ring_pos + 1) mod ring_capacity;
  match !slow_threshold_ref with
  | Some t when ev.depth = 0 && ev.duration_s >= t ->
      slow := ev :: !slow;
      if List.length !slow > slow_capacity then
        slow := List.filteri (fun i _ -> i < slow_capacity) !slow
  | _ -> ()

let enter label =
  let depth = match !current with None -> 0 | Some p -> p.depth + 1 in
  let s =
    { label; start = !clock (); self_ticks = 0; child_ticks = 0;
      parent = !current; depth }
  in
  current := Some s;
  Metrics.spans_opened ();
  s

(* Closing is where inclusive accounting happens: the child's total is
   what the parent sees as "time spent below me". *)
let exit_ s =
  current := s.parent;
  Metrics.spans_closed ();
  let total = s.self_ticks + s.child_ticks in
  (match s.parent with
  | Some p -> p.child_ticks <- p.child_ticks + total
  | None -> ());
  let duration_s = Float.max 0. (!clock () -. s.start) in
  if !enabled then
    record { label = s.label; depth = s.depth; duration_s; ticks = total };
  { duration_s; ticks = total }

let timed label f =
  let s = enter label in
  match f () with
  | v -> (v, exit_ s)
  | exception e ->
      ignore (exit_ s);
      raise e

let with_span label f = if not !enabled then f () else fst (timed label f)
