(** Concurrent sessions over one durable catalog: snapshot isolation
    with optimistic validation, and group commit.

    The design leans entirely on the functional catalog
    ({!Storage.Catalog}): a {e snapshot} is nothing but a catalog value
    paired with the journal position it reflects, published through one
    [Atomic.t] cell. Readers load the cell — no lock, no copy, no
    coordination with writers — and keep a perfectly consistent view
    for as long as they hold the value. Writers stage DML against their
    snapshot (ordinary {!Dml.exec}, producing a new catalog value
    nobody else can see), and at commit funnel through a single
    {e leader}: whichever session finds no flush in progress drains the
    commit queue, validates each transaction, appends every accepted
    transaction's journal records in {e one} fsync
    ({!Storage.Wal.append_batch}), and only after that fsync returns
    publishes the new snapshot. Durability therefore happens-before
    visibility: no session can ever read state that a crash could
    retract.

    {b Conflict rule} (first committer wins, checked tuple-wise against
    every transaction committed after the candidate's snapshot): a
    transaction T conflicts with an earlier-committed U iff
    [removed(T) ∩ (added(U) ∪ removed(U)) ≠ ∅] or
    [added(T) ∩ removed(U) ≠ ∅] on some relation. Two transactions
    that merely append tuples — even to the same relation — commute
    under the paper's union semantics and both commit; deletions and
    replacements of overlapping tuples abort the later committer with
    {!Session_error.Conflict}. Validation additionally replays the
    candidate onto the current state, so a merge that would violate the
    target schema (e.g. a key collision between two appends) is also a
    conflict, never a crash. The engine keeps a bounded per-relation
    history of recently committed deltas; a transaction whose snapshot
    predates the retained window is conservatively aborted.

    A fault thrown inside the commit path (an {!Storage.Io} injection,
    a real filesystem error) leaves durable state unknowable, so it
    {e poisons} the engine: every queued transaction fails with
    {!Session_error.Shutdown}, the exception propagates to the leader's
    caller, and a fresh {!open_engine} runs recovery — exactly the
    crash-restart cycle the drills in {!Drive.crash_matrix} exercise. *)

module Session_error = Session_error
(** Re-exported: the library is wrapped under this module. *)

type snapshot = {
  catalog : Storage.Catalog.t;
  lsn : int;  (** The journal position this catalog reflects. *)
}

type config = {
  flush_window_s : float;
      (** How long a leader waits before draining the queue, letting
          concurrent commits pile into its batch. [0.] (the default)
          flushes immediately — batches then form only from commits
          that arrive while a flush is already running. *)
  max_queue : int;
      (** Admission control: submissions beyond this many queued
          transactions fail with {!Session_error.Queue_full}. *)
  checkpoint_every : int;
      (** Cut a checkpoint ({!Storage.Persist.save} + journal reset)
          after this many journal records; [0] never checkpoints. *)
  group : bool;
      (** [false] degrades the committer to one fsync per transaction
          (same queue, same validation) — the baseline the group-commit
          benchmark compares against. *)
}

val default_config : config
(** [{ flush_window_s = 0.; max_queue = 64; checkpoint_every = 256;
      group = true }] *)

(** {1 The engine} *)

type engine

val open_engine :
  ?io:Storage.Io.t ->
  ?config:config ->
  dir:string ->
  unit ->
  engine * Storage.Persist.report
(** Opens the directory with full recovery first (creating an empty
    durable catalog if the directory does not exist), like
    {!Dml.open_durable}. The default [io] is
    [Storage.Io.retrying Storage.Io.real]. *)

val engine_snapshot : engine -> snapshot
(** The latest committed snapshot — a lock-free atomic load. *)

val queue_depth : engine -> int
val alive : engine -> bool

type stats = {
  committed : int;  (** Transactions committed. *)
  conflicts : int;  (** Transactions aborted by validation. *)
  queue_full : int;  (** Submissions refused by admission control. *)
  batches : int;  (** Group flushes that appended at least one record. *)
  records : int;  (** Journal records appended. *)
  max_batch : int;  (** Most records ever fsynced in one batch. *)
}

val stats : engine -> stats

val list_engines : unit -> engine list
(** Every engine opened and not yet shut down, in open order — the
    enumeration sysview uses to materialize [sys_sessions] without an
    engine being threaded through the query path. *)

val engine_dir : engine -> string
(** The durable directory this engine serves. *)

val flush : engine -> unit
(** Drains the commit queue now (leading as many flushes as needed),
    returning once it is empty or the engine is dead. *)

val shutdown : engine -> unit
(** {!flush}, then refuse all further work. Queued transactions that
    raced past the final flush fail with {!Session_error.Shutdown}.
    Idempotent. The directory is left consistent (journal intact);
    re-open to resume. *)

(** {1 Sessions} *)

type t

val attach :
  ?deadline_s:float -> ?max_tuples:int -> ?semantics:Nullrel.Semantics.t ->
  engine -> t
(** A new session. The optional limits build a fresh per-statement
    {!Nullrel.Exec} governor around every {!exec} — each session is
    governed independently, on whatever domain it runs (the ambient
    governor slot is domain-local). [semantics] fixes the dialect this
    session's [retrieve] statements answer under (default: the ambient
    {!Nullrel.Semantics.current} at attach time); it is installed
    around every statement with {!Nullrel.Semantics.with_semantics},
    exactly like the governor, and reported by [sys_sessions]. *)

val id : t -> int
val engine : t -> engine

val semantics : t -> Nullrel.Semantics.t
(** The dialect fixed at {!attach}. *)

val in_txn : t -> bool
val snapshot : t -> snapshot
(** The session's view: the staged catalog (own writes included) at the
    pinned position when a transaction is open, the latest committed
    snapshot otherwise. *)

val begin_ : t -> unit
(** Pins a snapshot now. Optional — the first update statement begins a
    transaction implicitly — but an explicit [begin_] gives repeatable
    reads before the first write. Fails ({!Nullrel.Exec_error.Error}
    [Bad_input]) if a transaction is already open or submitted. *)

val exec : t -> Quel.Ast.statement -> Dml.outcome
(** Runs one statement against the session's view. [retrieve] reads the
    view and stages nothing; an update begins a transaction if none is
    open and stages its effect (visible to this session's subsequent
    statements only). Statement-level failures — bad input, a governed
    abort, a schema violation — leave the staged transaction exactly as
    it was. *)

val exec_string : t -> string -> Dml.outcome

val rollback : t -> unit
(** Discards the staged transaction (no-op when none is open). *)

val commit : t -> int
(** Submits the staged transaction and waits for its outcome: the
    commit LSN on success (the transaction is then durable {e and}
    published), or a raised {!Session_error.Error}. [Conflict] rolls
    the transaction back; [Queue_full] leaves it staged so the caller
    can commit again; a commit with nothing staged just returns the
    current LSN. Equivalent to {!submit} followed by {!await}. *)

val submit : t -> unit
(** Stages the transaction's journal records on the commit queue
    without waiting (validation happens at flush time). After [submit],
    the session cannot execute statements until {!await} collects the
    outcome. Raises {!Session_error.Error} [Queue_full]/[Shutdown]. *)

val await : t -> int
(** Collects the submitted transaction's outcome, leading a group
    flush if no other session is already flushing (so a single-threaded
    caller never deadlocks: [submit; submit'; await] forms a 2-record
    batch under one fsync). *)

(** {1 Introspection}

    The raw material of sysview's [sys_sessions]. Sessions are tracked
    weakly (enumeration never extends a session's lifetime); fields are
    read racily but each load is atomic, so a row describes a state the
    session really was in. Unknown-by-construction fields are [None] —
    surfaced as the paper's [ni] by sysview: an idle session has no
    pinned snapshot, and a submitted transaction's staged shape is in
    flight until the flush decides its fate. *)

type session_state = Idle | Open | Submitted

type session_info = {
  si_sid : int;
  si_state : session_state;
  si_snap_lsn : int option;  (** [None] when idle. *)
  si_staged : int option;
      (** Relations staged; [None] once submitted (in flight). *)
  si_deadline_s : float option;
  si_max_tuples : int option;
  si_semantics : string;
      (** {!Nullrel.Semantics.to_string} of the session's dialect. *)
}

val sessions_info : engine -> session_info list
(** Live sessions attached to [eng], sorted by session id. *)

(** {1 Drills and demos}

    Shared drivers for the shell's [.session], the CLI's [sessions]
    command, the E22 benchmark and the crash-fault tests. *)

module Drive : sig
  val seed : ?io:Storage.Io.t -> dir:string -> unit -> unit
  (** Installs the demo schema (EVENTS(SID, SEQ), COUNTER(C, N) — no
      keys, empty) as a durable checkpoint, unless the directory
      already has it. *)

  val events_cardinal : Storage.Catalog.t -> int
  val has_event : Storage.Catalog.t -> sid:int -> seq:int -> bool
  val counter_value : Storage.Catalog.t -> int option
  (** Inspectors over the demo schema, for tests and verdicts. *)

  type report = {
    sessions : int;
    txns_per_session : int;
    committed : int;
    conflicts : int;
    queue_full_retries : int;
    events : int;  (** Final cardinality of EVENTS. *)
    engine_stats : stats;
    elapsed_s : float;
    latencies_s : float array;  (** Ack latency per committed txn, sorted. *)
  }

  val contention :
    engine -> sessions:int -> txns:int -> ?conflict_every:int -> unit -> report
  (** Fans [sessions] concurrent sessions over the {!Par.Pool} domain
      pool. Session [k] runs [txns] transactions: each appends the
      unique tuple (SID=k, SEQ=j) to EVENTS, and every [conflict_every]th
      also replaces COUNTER's single row — a deliberate write-write
      hotspot ([0] disables it). Conflicted transactions are counted
      and dropped (their EVENTS append vanishes with them), so on a
      freshly seeded engine [events = committed] — the report checks
      snapshot isolation, not just throughput. *)

  val percentile : float array -> float -> float
  (** [percentile sorted p] with [p] in [0., 100.]; [0.] on empty. *)

  type drill = {
    trials : int;
    crashes : int;  (** Trials whose injected fault actually fired. *)
    lost : int;  (** Trials where an {e acknowledged} txn vanished. *)
    resurrected : int;
        (** Trials where an {e aborted} txn's effect appeared. *)
    torn_tails : int;  (** Recoveries that reported a torn journal. *)
    clean_second_replays : int;
        (** Trials where a second recovery found nothing left to do. *)
  }

  val crash_matrix :
    dir:string ->
    trials:int ->
    mode:[ `Before_fsync | `Inside_fsync | `After_fsync ] ->
    unit ->
    drill
  (** The crash-fault drill, [trials] seeded runs per mode. Each trial
      builds acknowledged history (including one deliberately
      conflicted, hence aborted, transaction), then stages a multi-txn
      group batch and kills the modelled process before the batch
      append, halfway through its bytes (a torn tail), or after the
      fsync but before the snapshot publish. Recovery must retain every
      acknowledged transaction and must not resurrect the aborted one;
      a second recovery must be a no-op. Uses per-trial subdirectories
      of [dir]. *)

  val demo : dir:string -> unit -> string list
  (** A deterministic two-session walkthrough (snapshot isolation,
      one group batch, a conflict, a retry), as printable lines. *)
end
