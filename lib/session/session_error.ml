type t =
  | Conflict of { relation : string }
  | Queue_full of { limit : int }
  | Shutdown
  | Constraint of Constr.violation

exception Error of t

let class_name = function
  | Conflict _ -> "conflict"
  | Queue_full _ -> "queue-full"
  | Shutdown -> "shutdown"
  | Constraint _ -> "constraint"

let m_abort =
  let make cls =
    ( cls,
      Obs.Metrics.counter ~labels:[ ("class", cls) ]
        ~help:"Session transactions aborted at the engine boundary, by class"
        "nullrel_session_aborts_total" )
  in
  List.map make [ "conflict"; "queue-full"; "shutdown"; "constraint" ]

let raise_ e =
  if Obs.Metrics.is_enabled () then
    Obs.Metrics.inc (List.assoc (class_name e) m_abort);
  raise (Error e)

let conflict ~relation = raise_ (Conflict { relation })
let queue_full ~limit = raise_ (Queue_full { limit })
let shutdown () = raise_ Shutdown

(* Continues Exec_error's 2..6 range so the CLI maps every typed abort
   to a distinct process exit code. *)
let exit_code = function
  | Conflict _ -> 7
  | Queue_full _ -> 8
  | Shutdown -> 9
  | Constraint _ -> Constr.exit_code

let to_string = function
  | Conflict { relation } ->
      Printf.sprintf
        "conflict: a concurrent transaction touched %s after this \
         transaction's snapshot; re-run against a fresh snapshot"
        relation
  | Queue_full { limit } ->
      Printf.sprintf
        "commit queue full (%d pending transactions); commit again to retry"
        limit
  | Shutdown -> "session engine is shut down"
  | Constraint v -> Constr.to_string v

let pp ppf e = Format.pp_print_string ppf (to_string e)
let protect f = match f () with v -> Ok v | exception Error e -> Result.Error e
