open Nullrel

(* The library is wrapped under this module; re-export the taxonomy so
   clients reach it as [Session.Session_error]. *)
module Session_error = Session_error

type snapshot = { catalog : Storage.Catalog.t; lsn : int }

type config = {
  flush_window_s : float;
  max_queue : int;
  checkpoint_every : int;
  group : bool;
}

let default_config =
  { flush_window_s = 0.; max_queue = 64; checkpoint_every = 256; group = true }

(* ------------------------- metrics ---------------------------- *)

let m_commits =
  Obs.Metrics.counter ~help:"Session transactions committed"
    "nullrel_session_commits_total"

let m_flushes =
  Obs.Metrics.counter ~help:"Group-commit flushes led"
    "nullrel_session_flushes_total"

let h_commit_us =
  Obs.Metrics.histogram
    ~help:"Commit acknowledgement latency, microseconds"
    "nullrel_session_commit_us"

let g_queue =
  Obs.Metrics.gauge ~help:"Transactions waiting on the commit queue"
    "nullrel_session_queue_depth"

(* --------------------------- engine --------------------------- *)

type outcome_ = Committed of int | Rejected of Session_error.t

type pending = {
  ops : Storage.Wal.op list;
      (** The whole transaction — every relation change it staged,
          including cascade/set-null deltas its constraints fired, plus
          any constraint DDL. The leader numbers it as {e one} journal
          record, so the frame is the atomicity unit. *)
  snap_lsn : int;
  mutable outcome : outcome_ option;  (** Written by the leader (or
      poisoner) under the engine lock; read by the waiter likewise. *)
}

(* Bounded per-relation memory of recently committed deltas, newest
   first, for conflict validation. Only the current leader touches it
   (the [flushing] flag is a mutual exclusion for flush-side state). *)
type hist = {
  mutable entries : (int * Tuple.Set.t * Tuple.Set.t) list;
      (** (commit lsn, touched = added ∪ removed, removed). *)
  mutable len : int;
  mutable pruned_upto : int;
      (** Deltas with lsn <= this may have been forgotten: snapshots
          that old are conservatively conflicted. *)
}

let history_cap = 1024

type engine = {
  dir : string;
  io : Storage.Io.t;
  cfg : config;
  committed : snapshot Atomic.t;  (** The publication point. *)
  lock : Mutex.t;
  done_cond : Condition.t;
      (** Signalled whenever outcomes may have appeared: a flush
          finished, or the engine was poisoned. *)
  mutable queue : pending list;  (** Newest first; drained in FIFO. *)
  mutable queued : int;
  mutable flushing : bool;
  mutable dead : bool;
  history : (string, hist) Hashtbl.t;
  mutable dirty : int;  (** Journal records since the last checkpoint. *)
  mutable next_sid : int;
  (* Plain counters, all under [lock]: deterministic even when the Obs
     registry is disabled. *)
  mutable n_committed : int;
  mutable n_conflicts : int;
  mutable n_queue_full : int;
  mutable n_batches : int;
  mutable n_records : int;
  mutable n_max_batch : int;
}

type stats = {
  committed : int;
  conflicts : int;
  queue_full : int;
  batches : int;
  records : int;
  max_batch : int;
}

(* Registry of live engines, so sysview can enumerate them without
   threading an engine through every query path. Guarded by its own
   lock (never held together with an engine lock — registration and
   enumeration are cold paths). *)
let registry_lock = Mutex.create ()
let engines_ref : engine list ref = ref []

let list_engines () =
  Mutex.lock registry_lock;
  let es = !engines_ref in
  Mutex.unlock registry_lock;
  es

let engine_dir (eng : engine) = eng.dir

let open_engine ?(io = Storage.Io.retrying Storage.Io.real)
    ?(config = default_config) ~dir () =
  if config.max_queue < 1 then
    Exec_error.bad_input "Session.open_engine: max_queue must be >= 1";
  let report =
    if io.Storage.Io.file_exists dir then Storage.Persist.recover ~io ~dir ()
    else begin
      Storage.Persist.save ~io ~dir Storage.Catalog.empty;
      Storage.Persist.load_report ~io ~dir ()
    end
  in
  ( {
      dir;
      io;
      cfg = config;
      committed =
        Atomic.make
          {
            catalog = report.Storage.Persist.catalog;
            lsn = report.Storage.Persist.lsn;
          };
      lock = Mutex.create ();
      done_cond = Condition.create ();
      queue = [];
      queued = 0;
      flushing = false;
      dead = false;
      history = Hashtbl.create 16;
      dirty = 0;
      next_sid = 1;
      n_committed = 0;
      n_conflicts = 0;
      n_queue_full = 0;
      n_batches = 0;
      n_records = 0;
      n_max_batch = 0;
    },
    report )
  |> fun (eng, report) ->
  Mutex.lock registry_lock;
  engines_ref := !engines_ref @ [ eng ];
  Mutex.unlock registry_lock;
  (eng, report)

let engine_snapshot (eng : engine) = Atomic.get eng.committed

let queue_depth eng =
  Mutex.lock eng.lock;
  let n = eng.queued in
  Mutex.unlock eng.lock;
  n

let alive eng =
  Mutex.lock eng.lock;
  let a = not eng.dead in
  Mutex.unlock eng.lock;
  a

let stats eng =
  Mutex.lock eng.lock;
  let s =
    {
      committed = eng.n_committed;
      conflicts = eng.n_conflicts;
      queue_full = eng.n_queue_full;
      batches = eng.n_batches;
      records = eng.n_records;
      max_batch = eng.n_max_batch;
    }
  in
  Mutex.unlock eng.lock;
  s

(* ------------------------ validation -------------------------- *)

exception Conflicting of string

let tuples_of x = Relation.tuples (Xrel.rep x)

(* The conflict rule against one committed delta. [d]/[a] are the
   candidate's removed/added tuples of the same relation. *)
let check_against ~rel ~a ~d ~touched ~removed =
  if not (Tuple.Set.disjoint d touched) then raise (Conflicting rel);
  if not (Tuple.Set.disjoint a removed) then raise (Conflicting rel)

(* Tuple-wise first-committer-wins over a transaction's relation
   changes. Constraint DDL carries no tuples; it is validated by the
   speculative verifying apply in {!flush_batch} instead. *)
let validate_tuplewise eng ~snap_lsn ~batch_hist ops =
  List.iter
    (function
      | Storage.Wal.Add_constraint _ | Storage.Wal.Drop_constraint _ -> ()
      | Storage.Wal.Change c ->
          let a = tuples_of c.Storage.Wal.added
          and d = tuples_of c.Storage.Wal.removed in
          let rel = c.Storage.Wal.rel in
          List.iter
            (fun (rel', touched, removed) ->
              (* Everything accepted earlier in this batch commits after
                 any snapshot in it, so it always counts. *)
              if String.equal rel' rel then
                check_against ~rel ~a ~d ~touched ~removed)
            !batch_hist;
          (match Hashtbl.find_opt eng.history rel with
          | None -> ()
          | Some h ->
              if snap_lsn < h.pruned_upto then raise (Conflicting rel);
              List.iter
                (fun (lsn, touched, removed) ->
                  if lsn > snap_lsn then
                    check_against ~rel ~a ~d ~touched ~removed)
                h.entries))
    ops

let record_history eng rs =
  List.iter
    (fun (r : Storage.Wal.record) ->
      List.iter
        (function
          | Storage.Wal.Add_constraint _ | Storage.Wal.Drop_constraint _ -> ()
          | Storage.Wal.Change c ->
              let h =
                match Hashtbl.find_opt eng.history c.Storage.Wal.rel with
                | Some h -> h
                | None ->
                    let h = { entries = []; len = 0; pruned_upto = 0 } in
                    Hashtbl.add eng.history c.Storage.Wal.rel h;
                    h
              in
              let touched =
                Tuple.Set.union
                  (tuples_of c.Storage.Wal.added)
                  (tuples_of c.Storage.Wal.removed)
              in
              h.entries <-
                (r.lsn, touched, tuples_of c.Storage.Wal.removed) :: h.entries;
              h.len <- h.len + 1;
              if h.len > 2 * history_cap then begin
                (* Amortized prune: keep the newest [history_cap]. *)
                let kept =
                  List.filteri (fun i _ -> i < history_cap) h.entries
                in
                (match List.nth_opt h.entries history_cap with
                | Some (lsn, _, _) -> h.pruned_upto <- lsn
                | None -> ());
                h.entries <- kept;
                h.len <- history_cap
              end)
        r.ops)
    rs

(* -------------------------- flushing -------------------------- *)

let poison eng batch e bt =
  Mutex.lock eng.lock;
  eng.dead <- true;
  let fail p =
    match p.outcome with
    | Some _ -> ()
    | None -> p.outcome <- Some (Rejected Session_error.Shutdown)
  in
  List.iter fail batch;
  List.iter fail eng.queue;
  eng.queue <- [];
  eng.queued <- 0;
  Obs.Metrics.set_gauge g_queue 0.;
  Condition.broadcast eng.done_cond;
  Mutex.unlock eng.lock;
  Printexc.raise_with_backtrace e bt

(* Validate and commit one drained batch. Runs on exactly one domain at
   a time (the leader); any exception poisons the engine — durable
   state is unknowable past a half-done flush, and recovery on re-open
   is the only sound continuation. *)
let flush_batch (eng : engine) batch =
  try
    let snap = Atomic.get eng.committed in
    let next_lsn = ref snap.lsn in
    let scratch = ref snap.catalog in
    let batch_hist = ref [] in
    let records = ref [] in
    let accepted = ref [] in
    let conflicts = ref 0 in
    let first_rel ops =
      match
        List.filter_map
          (function
            | Storage.Wal.Change c -> Some c.Storage.Wal.rel | _ -> None)
          ops
      with
      | rel :: _ -> rel
      | [] -> "?"
    in
    List.iter
      (fun p ->
        match
          validate_tuplewise eng ~snap_lsn:p.snap_lsn ~batch_hist p.ops;
          (* Replay onto the current state speculatively: a schema
             violation from merging with a concurrent commit (e.g. a
             key collision of two independent appends) is a conflict
             too, caught here rather than crashing the publish. The
             apply also re-verifies any constraint DDL against the
             merged state, and the transaction's staged cascade closure
             is re-enforced: if the merged state demands {e more}
             cascade work than the snapshot did (a concurrent insert of
             a reference, say), the closure is stale and the
             transaction conflicts rather than committing a broken
             constraint. *)
          (let cat_before = !scratch and lsn_before = !next_lsn in
           match
             incr next_lsn;
             let r = { Storage.Wal.lsn = !next_lsn; ops = p.ops } in
             scratch := Storage.Wal.apply ~verify_constraints:true !scratch r;
             let seeds =
               List.filter_map
                 (function
                   | Storage.Wal.Change c ->
                       Some
                         {
                           Constr.d_rel = c.Storage.Wal.rel;
                           d_added = tuples_of c.Storage.Wal.added;
                           d_removed = tuples_of c.Storage.Wal.removed;
                         }
                   | Storage.Wal.Add_constraint _
                   | Storage.Wal.Drop_constraint _ ->
                       None)
                 p.ops
             in
             (match Storage.Catalog.enforce !scratch seeds with
             | [] -> ()
             | extra :: _ -> raise (Conflicting extra.Constr.d_rel));
             r
           with
           | r -> r
           | exception e ->
               scratch := cat_before;
               next_lsn := lsn_before;
               (match e with
               | Storage.Catalog.Violation _ | Storage.Wal.Error _ ->
                   raise (Conflicting (first_rel p.ops))
               | e -> raise e))
        with
        | r ->
            List.iter
              (function
                | Storage.Wal.Add_constraint _ | Storage.Wal.Drop_constraint _
                  ->
                    ()
                | Storage.Wal.Change c ->
                    batch_hist :=
                      ( c.Storage.Wal.rel,
                        Tuple.Set.union
                          (tuples_of c.Storage.Wal.added)
                          (tuples_of c.Storage.Wal.removed),
                        tuples_of c.Storage.Wal.removed )
                      :: !batch_hist)
              r.Storage.Wal.ops;
            records := r :: !records;
            accepted := (p, !next_lsn) :: !accepted
        | exception Conflicting rel ->
            incr conflicts;
            p.outcome <-
              Some (Rejected (Session_error.Conflict { relation = rel }))
        | exception Constr.Error v ->
            incr conflicts;
            p.outcome <- Some (Rejected (Session_error.Constraint v)))
      batch;
    let rs = List.rev !records in
    if rs <> [] then begin
      eng.io.Storage.Io.note "group-commit:validated";
      if eng.cfg.group then Storage.Wal.append_batch ~io:eng.io ~dir:eng.dir rs
      else
        (* The degraded baseline: one fsync per record. *)
        List.iter (fun r -> Storage.Wal.append ~io:eng.io ~dir:eng.dir r) rs;
      eng.io.Storage.Io.note "group-commit:fsynced";
      (* Durability happens-before visibility: the snapshot swap sits
         strictly after the journal fsync, so no reader can observe
         state a crash could retract. *)
      Atomic.set eng.committed { catalog = !scratch; lsn = !next_lsn };
      eng.io.Storage.Io.note "group-commit:published";
      record_history eng rs
    end;
    let n_rs = List.length rs in
    Mutex.lock eng.lock;
    List.iter (fun (p, lsn) -> p.outcome <- Some (Committed lsn)) !accepted;
    eng.n_committed <- eng.n_committed + List.length !accepted;
    eng.n_conflicts <- eng.n_conflicts + !conflicts;
    if n_rs > 0 then begin
      eng.n_batches <- eng.n_batches + 1;
      eng.n_records <- eng.n_records + n_rs;
      eng.n_max_batch <- max eng.n_max_batch n_rs;
      eng.dirty <- eng.dirty + n_rs
    end;
    Obs.Metrics.add m_commits (List.length !accepted);
    let due =
      eng.cfg.checkpoint_every > 0 && eng.dirty >= eng.cfg.checkpoint_every
    in
    if due then eng.dirty <- 0;
    Mutex.unlock eng.lock;
    if due then begin
      Storage.Persist.save ~io:eng.io ~lsn:!next_lsn ~dir:eng.dir !scratch;
      Storage.Wal.reset ~io:eng.io ~dir:eng.dir;
      eng.io.Storage.Io.note "group-commit:checkpointed"
    end
  with e -> poison eng batch e (Printexc.get_raw_backtrace ())

(* Run one flush as leader. The caller set [eng.flushing] under the
   lock; we clear it and wake waiters no matter how the flush ends. *)
let lead eng =
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock eng.lock;
      eng.flushing <- false;
      Condition.broadcast eng.done_cond;
      Mutex.unlock eng.lock)
    (fun () ->
      if eng.cfg.flush_window_s > 0. then
        (try Unix.sleepf eng.cfg.flush_window_s
         with Unix.Unix_error _ -> ());
      Mutex.lock eng.lock;
      let batch = List.rev eng.queue in
      eng.queue <- [];
      eng.queued <- 0;
      Obs.Metrics.set_gauge g_queue 0.;
      Mutex.unlock eng.lock;
      if batch <> [] then begin
        Obs.Metrics.inc m_flushes;
        flush_batch eng batch
      end)

(* Lead with the engine lock held on entry and on exit (released while
   actually flushing). *)
let lead_locked eng =
  eng.flushing <- true;
  Mutex.unlock eng.lock;
  Fun.protect ~finally:(fun () -> Mutex.lock eng.lock) (fun () -> lead eng)

let flush eng =
  Mutex.lock eng.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock eng.lock)
    (fun () ->
      let rec go () =
        if eng.dead then ()
        else if eng.flushing then begin
          Condition.wait eng.done_cond eng.lock;
          go ()
        end
        else if eng.queue = [] then ()
        else begin
          lead_locked eng;
          go ()
        end
      in
      go ())

let shutdown eng =
  flush eng;
  Mutex.lock eng.lock;
  if not eng.dead then begin
    eng.dead <- true;
    (* Submissions that raced past the final flush: fail, don't strand. *)
    List.iter
      (fun p -> p.outcome <- Some (Rejected Session_error.Shutdown))
      eng.queue;
    eng.queue <- [];
    eng.queued <- 0;
    Condition.broadcast eng.done_cond
  end;
  Mutex.unlock eng.lock;
  Mutex.lock registry_lock;
  engines_ref := List.filter (fun e -> e != eng) !engines_ref;
  Mutex.unlock registry_lock

(* -------------------------- sessions -------------------------- *)

type txn = {
  base : snapshot;
  mutable cat : Storage.Catalog.t;
  mutable writes : string list;  (** Relations touched, newest first. *)
}

type t = {
  sid : int;
  eng : engine;
  deadline_s : float option;
  max_tuples : int option;
  semantics : Semantics.t;
      (** Resolved at attach time (ambient default), so the dialect a
          session answers under is a fixed, reportable property. *)
  mutable txn : txn option;
  mutable inflight : pending option;
}

(* Weak tracking of attached sessions, for sysview's sys_sessions. A
   weak singleton per session: enumeration never keeps a session alive,
   and dead entries are pruned on the next attach. *)
let sessions_lock = Mutex.create ()
let session_refs : t Weak.t list ref = ref []

let attach ?deadline_s ?max_tuples ?semantics eng =
  Mutex.lock eng.lock;
  let sid = eng.next_sid in
  eng.next_sid <- sid + 1;
  Mutex.unlock eng.lock;
  let semantics =
    match semantics with Some sem -> sem | None -> Semantics.current ()
  in
  let sess =
    { sid; eng; deadline_s; max_tuples; semantics; txn = None; inflight = None }
  in
  let w = Weak.create 1 in
  Weak.set w 0 (Some sess);
  Mutex.lock sessions_lock;
  session_refs :=
    w :: List.filter (fun w -> Weak.check w 0) !session_refs;
  Mutex.unlock sessions_lock;
  sess

type session_state = Idle | Open | Submitted

type session_info = {
  si_sid : int;
  si_state : session_state;
  si_snap_lsn : int option;
      (** The pinned snapshot LSN — [None] when idle (no pinned view:
          reads track the moving committed snapshot). *)
  si_staged : int option;
      (** Relations staged so far — [None] once submitted: the
          transaction is in flight and its fate (and final shape) is
          unknown until the flush decides. *)
  si_deadline_s : float option;
  si_max_tuples : int option;
  si_semantics : string;  (** {!Nullrel.Semantics.to_string} of the dialect. *)
}

(* A racy-but-sound enumeration: each field is read once (word-sized
   loads never tear in OCaml), so a row describes a state the session
   actually was in at some recent moment. *)
let sessions_info eng =
  Mutex.lock sessions_lock;
  let refs = !session_refs in
  Mutex.unlock sessions_lock;
  List.filter_map
    (fun w ->
      match Weak.get w 0 with
      | Some s when s.eng == eng ->
          let inflight = s.inflight and txn = s.txn in
          let state, snap_lsn, staged =
            match (inflight, txn) with
            | Some p, _ -> (Submitted, Some p.snap_lsn, None)
            | None, Some t -> (Open, Some t.base.lsn, Some (List.length t.writes))
            | None, None -> (Idle, None, Some 0)
          in
          Some
            {
              si_sid = s.sid;
              si_state = state;
              si_snap_lsn = snap_lsn;
              si_staged = staged;
              si_deadline_s = s.deadline_s;
              si_max_tuples = s.max_tuples;
              si_semantics = Semantics.to_string s.semantics.Semantics.dialect;
            }
      | _ -> None)
    refs
  |> List.sort (fun a b -> compare a.si_sid b.si_sid)

let id sess = sess.sid
let engine sess = sess.eng
let semantics sess = sess.semantics
let in_txn sess = sess.txn <> None

let snapshot sess =
  match sess.txn with
  | Some t -> { catalog = t.cat; lsn = t.base.lsn }
  | None -> Atomic.get sess.eng.committed

let require_idle sess =
  if sess.inflight <> None then
    Exec_error.bad_input
      "transaction already submitted; await its outcome first"

let fresh_txn sess =
  let base = Atomic.get sess.eng.committed in
  { base; cat = base.catalog; writes = [] }

let begin_ sess =
  require_idle sess;
  match sess.txn with
  | Some _ -> Exec_error.bad_input "a transaction is already open"
  | None -> sess.txn <- Some (fresh_txn sess)

let governed sess f =
  (* The session's dialect rides the same ambient discipline as the
     governor: installed around each statement, restored on the way
     out, so concurrent sessions on one domain cannot leak dialects
     into each other. *)
  let f () = Semantics.with_semantics sess.semantics f in
  match (sess.deadline_s, sess.max_tuples) with
  | None, None -> f ()
  | deadline_s, max_tuples ->
      Exec.with_governor (Exec.make ?deadline_s ?max_tuples ()) f

let exec sess stmt =
  require_idle sess;
  if Dml.is_read stmt then
    (* A read: run against the session's view, stage nothing. *)
    governed sess (fun () -> Dml.exec (snapshot sess).catalog stmt)
  else begin
    (* An update: pin the snapshot *first*, then stage against that
       same catalog value. Reading the committed cell once is what
       makes [ops_of_txn] sound — a second load could observe a
       concurrent publish and manufacture phantom removals. *)
    let created = sess.txn = None in
    let t =
      match sess.txn with
      | Some t -> t
      | None ->
          let t = fresh_txn sess in
          sess.txn <- Some t;
          t
    in
    match governed sess (fun () -> Dml.exec t.cat stmt) with
    | out ->
        t.cat <- out.Dml.catalog;
        List.iter
          (fun rel ->
            if not (List.exists (String.equal rel) t.writes) then
              t.writes <- rel :: t.writes)
          out.Dml.touched;
        out
    | exception e ->
        (* A failed statement leaves the staged txn as it was — and
           if this statement was the one opening it, no txn at all. *)
        if created then sess.txn <- None;
        raise e
  end

let exec_string sess src = exec sess (Quel.Parser.parse_statement src)
let rollback sess = sess.txn <- None

let ops_of_txn t = Dml.ops_between t.base.catalog t.cat (List.rev t.writes)

let submit sess =
  require_idle sess;
  match sess.txn with
  | None -> ()
  | Some t -> (
      match ops_of_txn t with
      | [] -> sess.txn <- None
      | ops ->
          let p = { ops; snap_lsn = t.base.lsn; outcome = None } in
          Mutex.lock sess.eng.lock;
          if sess.eng.dead then begin
            Mutex.unlock sess.eng.lock;
            sess.txn <- None;
            Session_error.shutdown ()
          end
          else if sess.eng.queued >= sess.eng.cfg.max_queue then begin
            sess.eng.n_queue_full <- sess.eng.n_queue_full + 1;
            Mutex.unlock sess.eng.lock;
            (* The transaction stays staged: commit again to retry. *)
            Session_error.queue_full ~limit:sess.eng.cfg.max_queue
          end
          else begin
            sess.eng.queue <- p :: sess.eng.queue;
            sess.eng.queued <- sess.eng.queued + 1;
            Obs.Metrics.set_gauge g_queue (float_of_int sess.eng.queued);
            Mutex.unlock sess.eng.lock;
            sess.txn <- None;
            sess.inflight <- Some p
          end)

let await_pending eng p =
  Mutex.lock eng.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock eng.lock)
    (fun () ->
      let rec go () =
        match p.outcome with
        | Some o -> o
        | None ->
            if eng.dead then Rejected Session_error.Shutdown
            else if not eng.flushing then begin
              lead_locked eng;
              go ()
            end
            else begin
              Condition.wait eng.done_cond eng.lock;
              go ()
            end
      in
      go ())

let await sess =
  match sess.inflight with
  | None -> (Atomic.get sess.eng.committed).lsn
  | Some p -> (
      sess.inflight <- None;
      match await_pending sess.eng p with
      | Committed lsn -> lsn
      | Rejected e -> Session_error.raise_ e)

let commit sess =
  let t0 = Exec.monotonic_now () in
  submit sess;
  let lsn = await sess in
  if Obs.Metrics.is_enabled () then
    Obs.Metrics.observe h_commit_us
      (int_of_float ((Exec.monotonic_now () -. t0) *. 1e6));
  lsn

(* --------------------- drills and demos ----------------------- *)

module Drive = struct
  let attr = Attr.make
  let no_tuples = Xrel.of_tuples Tuple.Set.empty

  let events_schema =
    Schema.make "EVENTS" [ ("SID", Domain.Ints); ("SEQ", Domain.Ints) ]

  let counter_schema =
    Schema.make "COUNTER" [ ("C", Domain.Ints); ("N", Domain.Ints) ]

  let seed ?(io = Storage.Io.real) ~dir () =
    let have =
      io.Storage.Io.file_exists dir
      &&
      let report = Storage.Persist.load_report ~io ~dir () in
      Storage.Catalog.mem report.Storage.Persist.catalog "EVENTS"
      && Storage.Catalog.mem report.Storage.Persist.catalog "COUNTER"
    in
    if not have then begin
      let cat = Storage.Catalog.empty in
      let cat = Storage.Catalog.add cat events_schema no_tuples in
      let cat = Storage.Catalog.add cat counter_schema no_tuples in
      Storage.Persist.save ~io ~dir cat
    end

  let append_event ~sid ~seq =
    Printf.sprintf "append to EVENTS (SID = %d, SEQ = %d)" sid seq

  let replace_counter ~tag =
    Printf.sprintf "range of c is COUNTER replace c (N = %d) where c.C = 0" tag

  let init_counter = "append to COUNTER (C = 0, N = 0)"

  let events_cardinal cat =
    match Storage.Catalog.find cat "EVENTS" with
    | None -> 0
    | Some (_, x) -> Xrel.cardinal x

  let has_event cat ~sid ~seq =
    match Storage.Catalog.find cat "EVENTS" with
    | None -> false
    | Some (_, x) ->
        Tuple.Set.exists
          (fun t ->
            Value.equal (Tuple.get t (attr "SID")) (Value.Int sid)
            && Value.equal (Tuple.get t (attr "SEQ")) (Value.Int seq))
          (tuples_of x)

  let counter_value cat =
    match Storage.Catalog.find cat "COUNTER" with
    | None -> None
    | Some (_, x) -> (
        match Tuple.Set.choose_opt (tuples_of x) with
        | None -> None
        | Some t -> (
            match Tuple.get t (attr "N") with
            | Value.Int n -> Some n
            | _ -> None))

  type report = {
    sessions : int;
    txns_per_session : int;
    committed : int;
    conflicts : int;
    queue_full_retries : int;
    events : int;
    engine_stats : stats;
    elapsed_s : float;
    latencies_s : float array;
  }

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else begin
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))
    end

  let contention eng ~sessions ~txns ?(conflict_every = 4) () =
    if sessions < 1 || txns < 1 then
      Exec_error.bad_input "Drive.contention: sessions and txns must be >= 1";
    (* Make sure COUNTER has its single hotspot row. *)
    let setup = attach eng in
    if counter_value (engine_snapshot eng).catalog = None then begin
      ignore (exec_string setup init_counter);
      ignore (commit setup)
    end;
    let committed = Array.make sessions 0 in
    let conflicts = Array.make sessions 0 in
    let retries = Array.make sessions 0 in
    let latencies = Array.make_matrix sessions txns nan in
    let t_start = Exec.monotonic_now () in
    (* One chunk per session: the pool provides the concurrency (and
       with NULLREL_DOMAINS=1 degrades to a sequential, deterministic
       run — every commit then leads its own batch of one). *)
    Par.Pool.run ~chunks:sessions (fun k ->
        let sess = attach eng in
        for j = 1 to txns do
          ignore (exec_string sess (append_event ~sid:(k + 1) ~seq:j));
          if conflict_every > 0 && j mod conflict_every = 0 then
            ignore
              (exec_string sess
                 (replace_counter ~tag:(((k + 1) * 1_000_000) + j)));
          let t0 = Exec.monotonic_now () in
          let rec try_commit budget =
            match commit sess with
            | _lsn ->
                committed.(k) <- committed.(k) + 1;
                latencies.(k).(j - 1) <- Exec.monotonic_now () -. t0
            | exception Session_error.Error (Session_error.Conflict _) ->
                conflicts.(k) <- conflicts.(k) + 1
            | exception Session_error.Error (Session_error.Queue_full _)
              when budget > 0 ->
                retries.(k) <- retries.(k) + 1;
                (* The txn is still staged; help drain, then retry. *)
                flush eng;
                try_commit (budget - 1)
            | exception Session_error.Error _ ->
                rollback sess;
                conflicts.(k) <- conflicts.(k) + 1
          in
          try_commit 100
        done);
    let elapsed_s = Exec.monotonic_now () -. t_start in
    let lats =
      Array.to_list latencies |> Array.concat
      |> Array.to_seq
      |> Seq.filter (fun x -> not (Float.is_nan x))
      |> Array.of_seq
    in
    Array.sort compare lats;
    {
      sessions;
      txns_per_session = txns;
      committed = Array.fold_left ( + ) 0 committed;
      conflicts = Array.fold_left ( + ) 0 conflicts;
      queue_full_retries = Array.fold_left ( + ) 0 retries;
      events = events_cardinal (engine_snapshot eng).catalog;
      engine_stats = stats eng;
      elapsed_s;
      latencies_s = lats;
    }

  (* ----------------------- crash drills ----------------------- *)

  type drill = {
    trials : int;
    crashes : int;
    lost : int;
    resurrected : int;
    torn_tails : int;
    clean_second_replays : int;
  }

  (* An io that tears the next journal append in half once the leader
     announces it has validated a batch — the "crash inside the group
     fsync" arm of the matrix. *)
  let tearing base =
    let armed = ref false in
    {
      base with
      Storage.Io.note =
        (fun p ->
          base.Storage.Io.note p;
          if String.equal p "group-commit:validated" then armed := true);
      append_file =
        (fun path contents ->
          if !armed then begin
            armed := false;
            base.Storage.Io.append_file path
              (String.sub contents 0 (String.length contents / 2));
            raise
              (Storage.Io.Injected_fault
                 "crash midway through the group append")
          end
          else base.Storage.Io.append_file path contents);
    }

  let crash_io mode base =
    match mode with
    | `Before_fsync -> Storage.Io.crash_at ~point:"group-commit:validated" base
    | `Inside_fsync -> tearing base
    | `After_fsync -> Storage.Io.crash_at ~point:"group-commit:fsynced" base

  (* One seeded trial. Returns (crashed, lost, resurrected, torn,
     clean_second_replay). *)
  let trial ~dir ~mode ~trial_seed:n =
    let io = Storage.Io.real in
    let dir = Filename.concat dir (Printf.sprintf "trial-%d" n) in
    seed ~io ~dir ();
    (* Phase 1: acknowledged history, plus one deliberately aborted
       transaction whose effects must never reappear. *)
    let eng, _ = open_engine ~io ~dir () in
    let acked = ref [] in
    let s1 = attach eng in
    for j = 1 to 2 + (n mod 2) do
      ignore (exec_string s1 (append_event ~sid:1 ~seq:j));
      ignore (commit s1);
      acked := (1, j) :: !acked
    done;
    ignore (exec_string s1 init_counter);
    ignore (commit s1);
    (* sA and sB race on COUNTER: sA's commit aborts sB. *)
    let sa = attach eng in
    let sb = attach eng in
    ignore (exec_string sa (append_event ~sid:2 ~seq:n));
    ignore (exec_string sa (replace_counter ~tag:(1000 + n)));
    ignore (exec_string sb (append_event ~sid:3 ~seq:n));
    ignore (exec_string sb (replace_counter ~tag:(2000 + n)));
    ignore (commit sa);
    acked := (2, n) :: !acked;
    let aborted_event = (3, n) in
    (match commit sb with
    | _ ->
        Exec_error.bad_input
          "crash drill: sB's commit was expected to conflict with sA's"
    | exception Session_error.Error (Session_error.Conflict _) -> ());
    shutdown eng;
    (* Phase 2: stage a multi-transaction group batch and crash. *)
    let eng2, _ = open_engine ~io:(crash_io mode io) ~dir () in
    let staged = 1 + (n mod 3) in
    let victims = List.init staged (fun _ -> attach eng2) in
    List.iteri
      (fun i v -> ignore (exec_string v (append_event ~sid:(10 + i) ~seq:n)))
      victims;
    List.iter (fun v -> submit v) victims;
    let crashed =
      match flush eng2 with
      | () -> false
      | exception Storage.Io.Injected_fault _ -> true
    in
    (* Phase 3: recover and audit. *)
    let report = Storage.Persist.recover ~io ~dir () in
    let cat = report.Storage.Persist.catalog in
    let torn = report.Storage.Persist.journal_note <> None in
    let lost =
      List.exists (fun (sid, seq) -> not (has_event cat ~sid ~seq)) !acked
      || counter_value cat <> Some (1000 + n)
    in
    let resurrected =
      (let sid, sq = aborted_event in
       has_event cat ~sid ~seq:sq)
      || counter_value cat = Some (2000 + n)
    in
    (* A second recovery must find nothing left to do. *)
    let again = Storage.Persist.load_report ~io ~dir () in
    let clean =
      again.Storage.Persist.journal_note = None
      && List.for_all
           (fun (_, st) -> st = Storage.Persist.Ok)
           again.Storage.Persist.statuses
      && events_cardinal again.Storage.Persist.catalog = events_cardinal cat
    in
    (crashed, lost, resurrected, torn, clean)

  let crash_matrix ~dir ~trials ~mode () =
    (* Trials live in subdirectories; make sure the root exists. *)
    let io = Storage.Io.real in
    if not (io.Storage.Io.file_exists dir) then io.Storage.Io.mkdir dir;
    let count b = if b then 1 else 0 in
    let acc =
      ref
        {
          trials;
          crashes = 0;
          lost = 0;
          resurrected = 0;
          torn_tails = 0;
          clean_second_replays = 0;
        }
    in
    for n = 1 to trials do
      let crashed, lost, resurrected, torn, clean =
        trial ~dir ~mode ~trial_seed:n
      in
      let d = !acc in
      acc :=
        {
          d with
          crashes = d.crashes + count crashed;
          lost = d.lost + count lost;
          resurrected = d.resurrected + count resurrected;
          torn_tails = d.torn_tails + count torn;
          clean_second_replays = d.clean_second_replays + count clean;
        }
    done;
    !acc

  (* ------------------------- the demo -------------------------- *)

  let demo ~dir () =
    let lines = ref [] in
    let say fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
    seed ~dir ();
    let eng, _ = open_engine ~dir () in
    let a = attach eng and b = attach eng in
    ignore (exec_string a init_counter);
    ignore (commit a);
    say "two sessions attached; COUNTER seeded with its single row";
    (* Overlapping snapshots: both stage a replace of the same row. *)
    ignore (exec_string a (append_event ~sid:1 ~seq:1));
    ignore (exec_string a (replace_counter ~tag:101));
    ignore (exec_string b (append_event ~sid:2 ~seq:1));
    ignore (exec_string b (replace_counter ~tag:202));
    say "A staged: SID=1 event + COUNTER := 101 (snapshot lsn %d)"
      (snapshot a).lsn;
    say "B staged: SID=2 event + COUNTER := 202 (snapshot lsn %d)"
      (snapshot b).lsn;
    say "engine sees neither yet: EVENTS has %d rows, COUNTER = %d"
      (events_cardinal (engine_snapshot eng).catalog)
      (Option.value ~default:(-1)
         (counter_value (engine_snapshot eng).catalog));
    submit a;
    submit b;
    say "both submitted (queue depth %d); flushing one group batch"
      (queue_depth eng);
    flush eng;
    let show_await name s =
      match await s with
      | lsn -> say "%s committed at lsn %d" name lsn
      | exception Session_error.Error e ->
          say "%s aborted: %s" name (Session_error.to_string e)
    in
    show_await "A" a;
    show_await "B" b;
    say "COUNTER is now %d; EVENTS has %d rows (B's append died with it)"
      (Option.value ~default:(-1)
         (counter_value (engine_snapshot eng).catalog))
      (events_cardinal (engine_snapshot eng).catalog);
    (* B retries against a fresh snapshot and gets through. *)
    ignore (exec_string b (append_event ~sid:2 ~seq:1));
    ignore (exec_string b (replace_counter ~tag:202));
    ignore (commit b);
    say "B retried on a fresh snapshot: COUNTER = %d, EVENTS has %d rows"
      (Option.value ~default:(-1)
         (counter_value (engine_snapshot eng).catalog))
      (events_cardinal (engine_snapshot eng).catalog);
    let s = stats eng in
    say
      "engine stats: %d committed, %d conflicted, %d batches, largest \
       batch %d records"
      s.committed s.conflicts s.batches s.max_batch;
    shutdown eng;
    List.rev !lines
end
