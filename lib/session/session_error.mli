(** The typed error taxonomy of the concurrent session layer.

    Extends {!Nullrel.Exec_error}'s classes with the three ways a
    transaction can fail at the {e engine} boundary rather than inside
    its own execution: optimistic-concurrency conflicts, admission
    control, and engine shutdown. Statement-level failures (bad input,
    budgets, storage faults) keep raising {!Nullrel.Exec_error.Error};
    nothing a session can do should surface any other exception. *)

type t =
  | Conflict of { relation : string }
      (** First-committer-wins validation failed: another transaction
          that committed after this one's snapshot touched an
          overlapping set of tuples of [relation]. The transaction is
          rolled back; re-run it against a fresh snapshot. *)
  | Queue_full of { limit : int }
      (** Admission control: the engine's commit queue already holds
          [limit] pending transactions. The transaction stays staged;
          commit again to retry. *)
  | Shutdown
      (** The engine is stopped (or poisoned by a mid-flush fault) and
          accepts no further work. *)
  | Constraint of Constr.violation
      (** Commit-time constraint validation failed: against the {e
          merged} state (this transaction's effects on top of every
          concurrent commit that won), a declared constraint no longer
          holds. The transaction is rolled back; nothing was
          journaled. *)

exception Error of t

val raise_ : t -> 'a
val conflict : relation:string -> 'a
val queue_full : limit:int -> 'a
val shutdown : unit -> 'a

val class_name : t -> string
(** Stable one-word class: ["conflict"], ["queue-full"],
    ["shutdown"], ["constraint"]. *)

val exit_code : t -> int
(** Distinct nonzero process exit codes, continuing
    {!Nullrel.Exec_error.exit_code}'s 2..6 range: conflict 7,
    queue-full 8, shutdown 9, constraint 10. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val protect : (unit -> 'a) -> ('a, t) result
(** Runs the thunk, catching {!Error} (only) into [Error _]. *)
