(** Rule-based plan optimization.

    The rewrite rules are exactly the algebraic identities of the
    generalized operators that the property suite
    ([test/props_algebra.ml]) verifies — each rule's soundness under
    x-relation semantics is noted at its implementation:

    - conjunctive selections split into cascades;
    - selections push through union, through the minuend of a
      difference, below projections that retain their attributes, and
      into the operand of a product/equijoin that {e exclusively} covers
      their attributes (exclusivity matters: with overlapping scopes a
      join partner can supply the value a null left operand lacks, so
      pushing would wrongly drop tuples — see the soundness note in the
      implementation);
    - projection cascades fuse; projections distribute over union;
      projections onto (a superset of) the operand scope vanish;
    - empty constants propagate ([e x {} = {}], [e u {} = e], ...).

    With a statistics source ([?cost]) one cost-based rule joins the
    rule set: the factors of a maximal product chain are reordered
    smallest-estimate first, but only when their scope bounds are
    pairwise disjoint — then the product is commutative and the order
    cannot change the result. Plans compiled from QUEL qualify (every
    range variable is renamed to its own prefix); arbitrary plans with
    overlapping factor scopes are left alone.

    [optimize] iterates to a fixpoint. Rules only ever move selections
    downward, remove nodes, or stably sort product chains, so the
    fixpoint exists; a safety bound caps pathological cases. *)

open Nullrel

val rewrite_once :
  ?cost:Cost.source -> env_scope:(string -> Attr.Set.t option) -> Expr.t -> Expr.t
(** One bottom-up pass applying the first matching rule at each node. *)

val optimize :
  ?cost:Cost.source -> env_scope:(string -> Attr.Set.t option) -> Expr.t -> Expr.t
(** Fixpoint of {!rewrite_once} (bounded at 64 passes). Cost-based
    reordering only happens when [cost] is supplied. *)
