open Nullrel

let is_empty_const = function Expr.Const x -> Xrel.is_empty x | _ -> false

(* Can the predicate move into an operand with scope bound [mine], next
   to a sibling with scope bound [other]?  It must be fully covered by
   [mine] and untouched by [other]: if the sibling can also bind one of
   the predicate's attributes, a tuple that is null there on our side
   may still satisfy the predicate after the join supplies the value —
   pushing the selection would wrongly drop it. *)
let pushable p ~mine ~other =
  let needed = Predicate.attrs p in
  Attr.Set.subset needed mine && Attr.Set.disjoint needed other

(* The maximal product chain rooted at a node, left to right. *)
let rec product_factors = function
  | Expr.Product (e1, e2) -> product_factors e1 @ product_factors e2
  | e -> [ e ]

let rebuild_left_deep = function
  | [] -> Exec_error.bad_input "rebuild_left_deep: a product needs factors"
  | f :: rest -> List.fold_left (fun acc e -> Expr.Product (acc, e)) f rest

let rec pairwise_disjoint = function
  | [] -> true
  | s :: rest -> List.for_all (Attr.Set.disjoint s) rest && pairwise_disjoint rest

let rec rewrite_once ?cost ~env_scope expr =
  let recurse = rewrite_once ?cost ~env_scope in
  let scope e = Expr.scope_bound ~env_scope e in
  let expr =
    (* rewrite children first *)
    match expr with
    | Expr.Rel _ | Expr.Const _ -> expr
    | Expr.Select (p, e) -> Expr.Select (p, recurse e)
    | Expr.Project (x, e) -> Expr.Project (x, recurse e)
    | Expr.Product (e1, e2) -> Expr.Product (recurse e1, recurse e2)
    | Expr.Equijoin (x, e1, e2) -> Expr.Equijoin (x, recurse e1, recurse e2)
    | Expr.Union_join (x, e1, e2) ->
        Expr.Union_join (x, recurse e1, recurse e2)
    | Expr.Union (e1, e2) -> Expr.Union (recurse e1, recurse e2)
    | Expr.Diff (e1, e2) -> Expr.Diff (recurse e1, recurse e2)
    | Expr.Inter (e1, e2) -> Expr.Inter (recurse e1, recurse e2)
    | Expr.Divide (y, e1, e2) -> Expr.Divide (y, recurse e1, recurse e2)
    | Expr.Rename (m, e) -> Expr.Rename (m, recurse e)
  in
  match expr with
  (* --- constant propagation ------------------------------------ *)
  | Expr.Product (_, k) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Product (k, _) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Equijoin (_, _, k) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Equijoin (_, k, _) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Union (e, k) when is_empty_const k -> e
  | Expr.Union (k, e) when is_empty_const k -> e
  | Expr.Inter (_, k) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Inter (k, _) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Diff (k, _) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Diff (e, k) when is_empty_const k -> e
  | Expr.Select (_, k) when is_empty_const k -> Expr.Const Xrel.bottom
  | Expr.Project (_, k) when is_empty_const k -> Expr.Const Xrel.bottom
  (* --- selection rules ------------------------------------------ *)
  (* split conjunctions so the pieces can push independently;
     soundness: conjunctive selection = composition (props_algebra) *)
  | Expr.Select (Predicate.And (p, q), e) ->
      Expr.Select (p, Expr.Select (q, e))
  (* select through union (props_algebra: select distributes) *)
  | Expr.Select (p, Expr.Union (e1, e2)) ->
      Expr.Union (Expr.Select (p, e1), Expr.Select (p, e2))
  (* select through the minuend of a difference: both sides filter the
     minuend's minimal representation by [holds p] and by
     not-x-member-of-subtrahend — independent conditions *)
  | Expr.Select (p, Expr.Diff (e1, e2)) ->
      Expr.Diff (Expr.Select (p, e1), e2)
  (* select into one side of a product/equijoin when its attributes are
     exclusively that side's (see [pushable]) *)
  | Expr.Select (p, Expr.Product (e1, e2))
    when pushable p ~mine:(scope e1) ~other:(scope e2) ->
      Expr.Product (Expr.Select (p, e1), e2)
  | Expr.Select (p, Expr.Product (e1, e2))
    when pushable p ~mine:(scope e2) ~other:(scope e1) ->
      Expr.Product (e1, Expr.Select (p, e2))
  | Expr.Select (p, Expr.Equijoin (x, e1, e2))
    when pushable p ~mine:(scope e1) ~other:(scope e2) ->
      Expr.Equijoin (x, Expr.Select (p, e1), e2)
  | Expr.Select (p, Expr.Equijoin (x, e1, e2))
    when pushable p ~mine:(scope e2) ~other:(scope e1) ->
      Expr.Equijoin (x, e1, Expr.Select (p, e2))
  (* select through a rename: translate the predicate back to the
     pre-rename attribute names. Only safe when every attribute the
     predicate mentions is either a rename target (its values come from
     the unique source) or untouched by the mapping — an attribute that
     is a {e source} of the rename no longer exists above it, so the
     inverse translation would change the meaning. Duplicate targets
     (which merge columns) also disqualify. *)
  | Expr.Select (p, Expr.Rename (m, e))
    when
      let needed = Predicate.attrs p in
      let targets = List.map snd m in
      let sources =
        List.filter_map
          (fun (o, n) -> if Attr.equal o n then None else Some o)
          m
      in
      let rec unique = function
        | [] -> true
        | t :: rest -> (not (List.exists (Attr.equal t) rest)) && unique rest
      in
      unique targets
      && Attr.Set.for_all
           (fun a ->
             List.exists (Attr.equal a) targets
             || not (List.exists (Attr.equal a) sources))
           needed ->
      let back a =
        match List.find_opt (fun (_, n) -> Attr.equal n a) m with
        | Some (o, _) -> o
        | None -> a
      in
      Expr.Rename (m, Expr.Select (Predicate.map_attrs back p, e))
  (* select below a projection that keeps the needed attributes:
     p(r[X]) = p(r) when attrs(p) is inside X *)
  | Expr.Select (p, Expr.Project (x, e))
    when Attr.Set.subset (Predicate.attrs p) x ->
      Expr.Project (x, Expr.Select (p, e))
  (* --- projection rules ----------------------------------------- *)
  (* cascade fusion (props_algebra: project X . project Y) *)
  | Expr.Project (x, Expr.Project (y, e)) ->
      Expr.Project (Attr.Set.inter x y, e)
  (* projection distributes over union: projection respects
     information-wise equivalence, so it is well-defined on the class
     of the raw union *)
  | Expr.Project (x, Expr.Union (e1, e2)) ->
      Expr.Union (Expr.Project (x, e1), Expr.Project (x, e2))
  (* identity projection: projecting onto (a superset of) the operand's
     scope bound changes nothing *)
  | Expr.Project (x, e) when Attr.Set.subset (scope e) x -> e
  (* --- cost-based join ordering ---------------------------------- *)
  (* Only with a statistics source, and only when the factors of the
     maximal product chain have pairwise-disjoint scope bounds — then
     the product is commutative and associative up to tuple identity,
     so any order computes the same x-relation. Smallest factors first
     makes every intermediate product (and the probe side handed to the
     hash join after selections push back in) as small as the estimates
     allow. The stable sort keeps an already-ordered chain fixed, so
     the fixpoint iteration terminates. *)
  | Expr.Product (_, _) as prod -> (
      match cost with
      | None -> prod
      | Some stats -> (
          let factors = product_factors prod in
          match List.map scope factors with
          | scopes when not (pairwise_disjoint scopes) -> prod
          | _ ->
              let keyed =
                List.map (fun f -> (Cost.cardinality ~stats f, f)) factors
              in
              let sorted =
                List.stable_sort
                  (fun (k1, _) (k2, _) -> Float.compare k1 k2)
                  keyed
              in
              rebuild_left_deep (List.map snd sorted)))
  | other -> other

let optimize ?cost ~env_scope expr =
  let rec go n expr =
    if n = 0 then expr
    else begin
      Exec.checkpoint ();
      let expr' = rewrite_once ?cost ~env_scope expr in
      if Expr.equal expr' expr then expr else go (n - 1) expr'
    end
  in
  go 64 expr
