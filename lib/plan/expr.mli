(** Relational-algebra expression trees over x-relations.

    The paper's Section 7 shows x-relations are closed under the
    complete algebra; this module makes algebra {e expressions} a first-
    class value so they can be built by the mini-QUEL compiler
    ({!Compile}), rewritten by the optimizer ({!Rewrite}) and costed
    ({!Cost}). Evaluation is the straightforward bottom-up application
    of the operators of {!Nullrel.Xrel} and {!Nullrel.Algebra}. *)

open Nullrel

type t =
  | Rel of string  (** A named base relation, resolved by the environment. *)
  | Const of Xrel.t  (** A literal relation. *)
  | Select of Predicate.t * t
  | Project of Attr.Set.t * t
  | Product of t * t
  | Equijoin of Attr.Set.t * t * t
  | Union_join of Attr.Set.t * t * t
  | Union of t * t
  | Diff of t * t
  | Inter of t * t
  | Divide of Attr.Set.t * t * t  (** [Divide (y, dividend, divisor)]. *)
  | Rename of (Attr.t * Attr.t) list * t

exception Unbound_relation of string

val op_label : t -> string
(** Short operator name for spans and EXPLAIN output: the relation name
    for [Rel], otherwise ["select"], ["equijoin"], ["union-join"], … *)

val equijoin_impl :
  (Kernel.strategy -> Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t) ref

val union_join_impl :
  (Kernel.strategy -> Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t) ref
(** The physical operators run for [Equijoin]/[Union_join] nodes. The
    first argument is the planner's {!Nullrel.Kernel.strategy} hint for
    the node (see [eval]'s [join_strategy]); implementations are free
    to ignore it. Default to {!Nullrel.Algebra.equijoin}/[union_join]
    (which do); the shells and the CLI install
    [Storage.Join.hash_equijoin]/[hash_union_join] at load time (the
    planner cannot depend on the storage library, so the binding is a
    link-time seam, like [Obs.Metrics.on_hot_change]). Any installed
    implementation must agree with the logical operator extensionally —
    that agreement is property-tested. *)

val eval :
  ?join_strategy:(t -> Kernel.strategy) -> env:(string -> Xrel.t option) ->
  t -> Xrel.t
(** Bottom-up evaluation. Raises {!Unbound_relation} when a [Rel] name
    is not in the environment. [join_strategy] is consulted once per
    [Equijoin]/[Union_join] node (receiving the node itself) and its
    answer passed to the installed physical operator; the default
    answers {!Nullrel.Kernel.Auto} everywhere, i.e. the operator's own
    size cutovers decide. *)

val scope_bound :
  env_scope:(string -> Attr.Set.t option) -> t -> Attr.Set.t
(** A static upper bound on the scope of the result (the actual scope
    can be smaller — e.g. a selection can empty a relation). Used by the
    pushdown rules to decide which operand a predicate can move into.
    Raises {!Unbound_relation}. *)

val size : t -> int
(** Number of operator nodes (for rewrite-termination arguments and
    tests). *)

val equal : t -> t -> bool
(** Structural equality of plans (predicates compared structurally). *)

val pp : Format.formatter -> t -> unit
(** One-line algebra rendering, e.g.
    [project{A}(select[A<=1](R x S))]. *)
