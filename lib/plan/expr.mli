(** Relational-algebra expression trees over x-relations.

    The paper's Section 7 shows x-relations are closed under the
    complete algebra; this module makes algebra {e expressions} a first-
    class value so they can be built by the mini-QUEL compiler
    ({!Compile}), rewritten by the optimizer ({!Rewrite}) and costed
    ({!Cost}). Evaluation is the straightforward bottom-up application
    of the operators of {!Nullrel.Xrel} and {!Nullrel.Algebra}. *)

open Nullrel

type t =
  | Rel of string  (** A named base relation, resolved by the environment. *)
  | Const of Xrel.t  (** A literal relation. *)
  | Select of Predicate.t * t
  | Project of Attr.Set.t * t
  | Product of t * t
  | Equijoin of Attr.Set.t * t * t
  | Union_join of Attr.Set.t * t * t
  | Union of t * t
  | Diff of t * t
  | Inter of t * t
  | Divide of Attr.Set.t * t * t  (** [Divide (y, dividend, divisor)]. *)
  | Rename of (Attr.t * Attr.t) list * t

exception Unbound_relation of string

val op_label : t -> string
(** Short operator name for spans and EXPLAIN output: the relation name
    for [Rel], otherwise ["select"], ["equijoin"], ["union-join"], … *)

val equijoin_impl :
  (Kernel.strategy -> Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t) ref

val union_join_impl :
  (Kernel.strategy -> Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t) ref
(** The physical operators run for [Equijoin]/[Union_join] nodes. The
    first argument is the planner's {!Nullrel.Kernel.strategy} hint for
    the node (see [eval]'s [join_strategy]); implementations are free
    to ignore it. Default to {!Nullrel.Algebra.equijoin}/[union_join]
    (which do); the shells and the CLI install
    [Storage.Join.hash_equijoin]/[hash_union_join] at load time (the
    planner cannot depend on the storage library, so the binding is a
    link-time seam, like [Obs.Metrics.on_hot_change]). Any installed
    implementation must agree with the logical operator extensionally —
    that agreement is property-tested. *)

val equijoin_probe_impl :
  (Kernel.strategy ->
  Attr.Set.t ->
  Xrel.t ->
  (Tuple.t -> Tuple.t list) ->
  Xrel.t)
  ref
(** The physical operator run for an [Equijoin] node whose build side
    is served by a pre-built equality probe (see [eval]'s
    [index_probe]): the build operand is never evaluated. The default
    is a governed sequential probe loop; the shells install
    [Storage.Join.probe_equijoin]. The probe contract is
    [Storage.Join.probe_equijoin]'s: exact matches on the join
    attributes for X-total tuples, [[]] otherwise. *)

val eval :
  ?join_strategy:(t -> Kernel.strategy) ->
  ?index_probe:(t -> (Tuple.t -> Tuple.t list) option) ->
  env:(string -> Xrel.t option) ->
  t -> Xrel.t
(** Bottom-up evaluation. Raises {!Unbound_relation} when a [Rel] name
    is not in the environment. [join_strategy] is consulted once per
    [Equijoin]/[Union_join] node (receiving the node itself) and its
    answer passed to the installed physical operator; the default
    answers {!Nullrel.Kernel.Auto} everywhere, i.e. the operator's own
    size cutovers decide. [index_probe] is consulted once per
    [Equijoin] node and once per [Select]-over-[Product] node (the
    join shape compiled queries take, since the algebra cannot merge
    two differently-named columns into an [Equijoin]); when it
    answers a probe — a declared secondary
    index covering the build side, translated through the plan's
    renames by [Compile.index_probe_of] — the node runs through
    {!equijoin_probe_impl} and the build operand (for a
    select-over-product, the right factor) is never evaluated. The
    default answers [None] everywhere. *)

val scope_bound :
  env_scope:(string -> Attr.Set.t option) -> t -> Attr.Set.t
(** A static upper bound on the scope of the result (the actual scope
    can be smaller — e.g. a selection can empty a relation). Used by the
    pushdown rules to decide which operand a predicate can move into.
    Raises {!Unbound_relation}. *)

val size : t -> int
(** Number of operator nodes (for rewrite-termination arguments and
    tests). *)

val equal : t -> t -> bool
(** Structural equality of plans (predicates compared structurally). *)

val pp : Format.formatter -> t -> unit
(** One-line algebra rendering, e.g.
    [project{A}(select[A<=1](R x S))]. *)
