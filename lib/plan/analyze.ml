open Nullrel

type node = {
  label : string;
  est_rows : float;
  actual_rows : int;
  ticks : int;
  elapsed_s : float;
  children : node list;
}

(* Mirrors [Expr.eval] but measures each node with [Obs.Span.timed]
   (which works with tracing globally off) and keeps the per-node
   results that [eval] discards. Spans nest, so [ticks] and
   [elapsed_s] are inclusive of the children — the natural reading of
   an EXPLAIN ANALYZE tree. *)
let rec run ?(join_strategy = fun _ -> Kernel.Auto) ~stats ~env e =
  let run = run ~join_strategy in
  Exec.checkpoint ();
  let est_rows = Cost.cardinality ~stats e in
  let (x, children), m =
    Obs.Span.timed (Expr.op_label e) (fun () ->
        let unary op e1 =
          let x1, n1 = run ~stats ~env e1 in
          (op x1, [ n1 ])
        in
        let binary op e1 e2 =
          let x1, n1 = run ~stats ~env e1 in
          let x2, n2 = run ~stats ~env e2 in
          (op x1 x2, [ n1; n2 ])
        in
        match e with
        | Expr.Rel name -> (
            match env name with
            | Some x -> (x, [])
            | None -> raise (Expr.Unbound_relation name))
        | Expr.Const x -> (x, [])
        | Expr.Select (p, e1) -> unary (Algebra.select p) e1
        | Expr.Project (xs, e1) -> unary (Algebra.project xs) e1
        | Expr.Rename (mapping, e1) -> unary (Algebra.rename mapping) e1
        | Expr.Product (e1, e2) -> binary Algebra.product e1 e2
        | Expr.Equijoin (xs, e1, e2) as node ->
            binary (!Expr.equijoin_impl (join_strategy node) xs) e1 e2
        | Expr.Union_join (xs, e1, e2) as node ->
            binary (!Expr.union_join_impl (join_strategy node) xs) e1 e2
        | Expr.Union (e1, e2) -> binary Xrel.union e1 e2
        | Expr.Diff (e1, e2) -> binary Xrel.diff e1 e2
        | Expr.Inter (e1, e2) -> binary Xrel.inter e1 e2
        | Expr.Divide (y, e1, e2) -> binary (Algebra.divide y) e1 e2)
  in
  ( x,
    {
      label = Expr.op_label e;
      est_rows;
      actual_rows = Xrel.cardinal x;
      ticks = m.Obs.Span.ticks;
      elapsed_s = m.Obs.Span.duration_s;
      children;
    } )

let rec rows prefix n =
  (prefix ^ n.label, n)
  :: List.concat_map (rows (prefix ^ "  ")) n.children

(* Estimation quality of one node: estimate over actual, the symmetric
   "q-error" direction left visible (0.25 means 4x under). Actual-empty
   nodes print "-": any over-estimate of an empty result is infinitely
   wrong and a ratio would only shout about it. *)
let ratio n =
  if n.actual_rows = 0 then "-"
  else Printf.sprintf "%.2f" (n.est_rows /. float n.actual_rows)

let render ?semantics root =
  let heading =
    (* Annotate the active dialect: an analyzed physical plan is
       always the Ni_lower pipeline, so naming the dialect makes the
       dispatch visible instead of implicit. *)
    match semantics with
    | None -> []
    | Some name -> [ "semantics: " ^ name ]
  in
  let body = rows "" root in
  let est n = Printf.sprintf "%g" n.est_rows in
  let ms n = Printf.sprintf "%.1f" (n.elapsed_s *. 1000.) in
  let header = ("operator", "est", "actual", "est/act", "ticks", "ms") in
  let cells =
    header
    :: List.map
         (fun (label, n) ->
           ( label,
             est n,
             string_of_int n.actual_rows,
             ratio n,
             string_of_int n.ticks,
             ms n ))
         body
  in
  let w f = List.fold_left (fun acc r -> max acc (String.length (f r))) 0 cells in
  let w1 = w (fun (a, _, _, _, _, _) -> a)
  and w2 = w (fun (_, b, _, _, _, _) -> b)
  and w3 = w (fun (_, _, c, _, _, _) -> c)
  and w4 = w (fun (_, _, _, d, _, _) -> d)
  and w5 = w (fun (_, _, _, _, e, _) -> e)
  and w6 = w (fun (_, _, _, _, _, f) -> f) in
  String.concat "\n"
    (heading
    @ List.map
        (fun (a, b, c, d, e, f) ->
          Printf.sprintf "%-*s  %*s  %*s  %*s  %*s  %*s" w1 a w2 b w3 c w4 d
            w5 e w6 f)
        cells)
