(** Compiling mini-QUEL queries into algebra plans.

    This is the paper's Section 8 efficiency claim made concrete: the
    calculus (mini-QUEL) translates to the generalized algebra, the
    algebra is optimized by {!Rewrite}, and evaluation happens
    operator-by-operator. The compiled-and-optimized pipeline computes
    exactly the lower bound [||Q||-] of {!Quel.Eval.run} (property
    [test/props_plan.ml]). *)

open Nullrel

val query :
  schemas:(string -> Attr.t list option) -> Quel.Ast.query -> Expr.t
(** [query ~schemas q] compiles: each range variable becomes a renamed
    base relation (attributes prefixed [v.A]), the ranges multiply into
    a product, the qualification becomes a selection, the target list a
    projection, and a final rename restores the output column names of
    {!Quel.Eval.target_attr}. Raises {!Quel.Resolve.Error} on unknown
    relations (schema lookup failures). *)

val join_strategy_of : stats:Cost.source -> Expr.t -> Kernel.strategy
(** The dispatch hint [run] hands the physical join for an
    [Equijoin]/[Union_join] node: {!Cost.cardinality} of the estimated
    probe (left) side through {!Nullrel.Kernel.strategy_for}; an
    [Equijoin] whose build side has a {!Cost.probe_target}, or a
    [Select]-over-[Product] with a {!Cost.select_product_probe}, is
    [Indexed]. [Auto] for any other node. *)

val index_probe_of :
  stats:Cost.source ->
  probe_for:(string -> Attr.Set.t -> (Tuple.t -> Tuple.t list) option) ->
  Expr.t ->
  (Tuple.t -> Tuple.t list) option
(** The probe a declared secondary index serves for one join node:
    {!Cost.probe_target} on an [Equijoin]'s build arm, or
    {!Cost.select_product_probe} on a [Select]-over-[Product] node —
    the join shape every compiled query takes. The raw base-relation
    probe comes from [probe_for] (the shells wire
    [Storage.Catalog.equi_probe]); inputs and hits are translated
    through the plan's renames. The shape [eval]'s [index_probe]
    parameter expects, partially applied to the stats source and
    catalog. *)

val run_bands :
  ?semantics:Semantics.t -> Quel.Resolve.db -> Quel.Ast.query ->
  Quel.Eval.bands
(** Evaluate under a dialect ({!Nullrel.Semantics.current} by
    default) and return its bands — the planner-side entry the shells
    use for the reporting dialects. Physical plans serve [Ni_lower]
    only (the physical algebra minimizes at every operator, which is
    precisely the set discipline the other dialects reject), so this
    routes through the calculus evaluator {!Quel.Eval.query}. *)

val run :
  ?optimize:bool -> ?stats:Cost.source -> ?semantics:Semantics.t ->
  ?index_probe:(Expr.t -> (Tuple.t -> Tuple.t list) option) ->
  Quel.Resolve.db -> Quel.Ast.query ->
  Quel.Eval.result
(** Compile (optimizing by default), then evaluate against the
    database. Agrees with {!Quel.Eval.run}. A statistics source turns
    on the cost-based parts of the pipeline: product chains reorder
    smallest-first ({!Rewrite.optimize}'s [?cost]) and each join node
    carries a {!Nullrel.Kernel.strategy} hint derived from its
    estimated probe side. Under a non-[Ni_lower] dialect (explicit
    [semantics], or the ambient default) the physical pipeline is
    bypassed for {!run_bands} and the result is the sure band,
    re-minimized to fit the [Xrel.t]-shaped result — callers wanting
    the dialect's plain-set bands use {!run_bands} directly. *)
