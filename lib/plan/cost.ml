open Nullrel

let selectivity = 1. /. 3.
let default_cardinality = 1000.
let join_selectivity = 0.1

(* ------------------------ statistics source -------------------- *)

type source = {
  rowcount : string -> int option;
  table : string -> Stats.table option;
  equipped : string -> Attr.Set.t -> bool;
}

let of_rowcount rowcount =
  { rowcount; table = (fun _ -> None); equipped = (fun _ _ -> false) }

(* ------------------- secondary-index targets ------------------- *)

(* Invert one rename layer on one attribute: [None] when the attribute
   was renamed away at this layer (so it is not visible below). *)
let invert_attr mapping a =
  match List.find_opt (fun (_, fresh) -> Attr.equal fresh a) mapping with
  | Some (old, _) -> Some old
  | None ->
      if List.exists (fun (old, _) -> Attr.equal old a) mapping then None
      else Some a

let invert_set mapping x =
  Attr.Set.fold
    (fun a acc ->
      match acc with
      | None -> None
      | Some s -> Option.map (fun a0 -> Attr.Set.add a0 s) (invert_attr mapping a))
    x (Some Attr.Set.empty)

(* A join arm that bottoms out, through renames only, in a base
   relation equipped with a declared index on exactly the join
   attributes. Returns the base name, the attributes under their base
   names, and the tuple translations between the node's scope and the
   base relation's: [down] carries a probe tuple into base names, [up]
   carries an indexed hit back out. The compiler always wraps a range
   variable as [Rename (prefix_mapping …, Rel name)], so this is the
   shape every compiled join has. *)
let rec probe_target stats x = function
  | Expr.Rel name ->
      if stats.equipped name x then Some (name, x, Fun.id, Fun.id) else None
  | Expr.Rename (mapping, e) -> (
      match invert_set mapping x with
      | None -> None
      | Some x0 ->
          let backward = List.map (fun (old, fresh) -> (fresh, old)) mapping in
          Option.map
            (fun (name, xb, down, up) ->
              ( name,
                xb,
                (fun t -> down (Tuple.rename backward t)),
                fun t -> Tuple.rename mapping (up t) ))
            (probe_target stats x0 e))
  | _ -> None

(* A compiled query never forms [Equijoin] (the algebra cannot merge
   two differently-named columns into one), so the join shape the
   planner actually sees is a cross-scope equality selection directly
   over a product. When the right factor bottoms out in a base
   relation indexed on its side of the equality, each left tuple's
   value probes the index instead of the product materializing:
   returns (left attribute, indexed attribute, target). Sound because
   a sure equality is upward-closed under subsumption, so filtering
   commutes with minimization. *)
let select_product_probe stats p e2 =
  match p with
  | Predicate.Cmp_attrs (a, Predicate.Eq, b) -> (
      match probe_target stats (Attr.Set.singleton b) e2 with
      | Some target -> Some (a, b, target)
      | None ->
          Option.map
            (fun target -> (b, a, target))
            (probe_target stats (Attr.Set.singleton a) e2))
  | _ -> None

let equipped_join stats = function
  | Expr.Equijoin (x, _, e2) -> probe_target stats x e2 <> None
  | Expr.Select (p, Expr.Product (e1, e2)) ->
      (* Either factor can serve the probe: the evaluator commutes the
         product when the indexed factor sits on the left. *)
      select_product_probe stats p e2 <> None
      || select_product_probe stats p e1 <> None
  | _ -> false

(* Column summary for an attribute visible at a plan node, found by
   digging down to a base relation that binds it, inverting renames on
   the way. Returns the summary plus the base relation's row count
   (the denominator of its null fraction). This deliberately ignores
   what intermediate operators do to the distribution — standard
   attribute-independence optimism. *)
let rec column stats a = function
  | Expr.Rel name -> (
      match stats.table name with
      | Some t ->
          Option.map (fun c -> (c, t.Stats.rows)) (Stats.column t a)
      | None -> None)
  | Expr.Const _ -> None
  | Expr.Select (_, e) | Expr.Project (_, e) -> column stats a e
  | Expr.Product (e1, e2)
  | Expr.Equijoin (_, e1, e2)
  | Expr.Union_join (_, e1, e2)
  | Expr.Union (e1, e2)
  | Expr.Inter (e1, e2) -> (
      match column stats a e1 with
      | Some _ as found -> found
      | None -> column stats a e2)
  | Expr.Diff (e1, _) -> column stats a e1
  | Expr.Divide (_, _, _) -> None
  | Expr.Rename (mapping, e) ->
      if List.exists (fun (old, _) -> Attr.equal old a) mapping then
        (* [a]'s old name was renamed away: not visible here. *)
        None
      else
        let a =
          match
            List.find_opt (fun (_, fresh) -> Attr.equal fresh a) mapping
          with
          | Some (old, _) -> old
          | None -> a
        in
        column stats a e

let null_frac (c, rows) =
  if rows = 0 then 0. else float c.Stats.nulls /. float rows

let not_null cr = 1. -. null_frac cr
let distinct (c, _) = float (max 1 c.Stats.distinct)

(* ------------------------ selectivity -------------------------- *)

let clamp01 s = Float.max 0. (Float.min 1. s)

(* Fraction of an integer column's live range that a comparison
   against [k] keeps, assuming a uniform spread over [lo..hi]. *)
let range_fraction cmp ~lo ~hi k =
  let width = float (hi - lo + 1) in
  let frac =
    match cmp with
    | Predicate.Lt -> float (k - lo) /. width
    | Predicate.Le -> float (k - lo + 1) /. width
    | Predicate.Gt -> float (hi - k) /. width
    | Predicate.Ge -> float (hi - k + 1) /. width
    | Predicate.Eq | Predicate.Neq -> assert false
  in
  clamp01 frac

(* Null-aware predicate selectivity (Table III): a comparison touching
   a null evaluates to [ni] and only TRUE qualifies, so every estimate
   starts by discounting the column's null fraction. Attributes with
   no statistics fall back to the fixed {!selectivity}. *)
let rec pred_selectivity ~col p =
  match p with
  | Predicate.Cmp_const (a, cmp, v) -> (
      match col a with
      | None -> selectivity
      | Some cr -> (
          match cmp with
          | Predicate.Eq -> not_null cr /. distinct cr
          | Predicate.Neq -> not_null cr *. (1. -. (1. /. distinct cr))
          | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge -> (
              let c, _ = cr in
              match (c.Stats.min_int, c.Stats.max_int, v) with
              | Some lo, Some hi, Value.Int k when hi >= lo ->
                  not_null cr *. range_fraction cmp ~lo ~hi k
              | _ -> not_null cr *. selectivity)))
  | Predicate.Cmp_attrs (a, cmp, b) -> (
      match (col a, col b) with
      | Some ca, Some cb ->
          let live = not_null ca *. not_null cb in
          let base =
            match cmp with
            | Predicate.Eq -> 1. /. Float.max (distinct ca) (distinct cb)
            | Predicate.Neq -> 1. -. (1. /. Float.max (distinct ca) (distinct cb))
            | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge ->
                selectivity
          in
          live *. base
      | _ -> selectivity)
  | Predicate.And (p1, p2) ->
      pred_selectivity ~col p1 *. pred_selectivity ~col p2
  | Predicate.Or (p1, p2) ->
      let s1 = pred_selectivity ~col p1 and s2 = pred_selectivity ~col p2 in
      clamp01 (s1 +. s2 -. (s1 *. s2))
  | Predicate.Not p ->
      (* Three-valued complement: [Not p] is TRUE exactly where [p] is
         FALSE — the [ni] rows qualify for neither side. The qualifying
         mass splits the null-free fraction of [p]'s attributes. *)
      let coverage =
        Attr.Set.fold
          (fun a acc ->
            match col a with Some cr -> acc *. not_null cr | None -> acc)
          (Predicate.attrs p) 1.
      in
      clamp01 (coverage -. pred_selectivity ~col p)
  | Predicate.Const Tvl.True -> 1.
  | Predicate.Const (Tvl.False | Tvl.Ni) -> 0.

(* ------------------------ cardinality -------------------------- *)

let rec cardinality ~stats = function
  | Expr.Rel name -> (
      match stats.table name with
      | Some t -> float t.Stats.rows
      | None -> (
          match stats.rowcount name with
          | Some n -> float n
          | None -> default_cardinality))
  | Expr.Const x -> float (Xrel.cardinal x)
  | Expr.Select (p, e) ->
      let col a = column stats a e in
      pred_selectivity ~col p *. cardinality ~stats e
  | Expr.Project (x, e) ->
      (* Capped by the product of per-attribute distinct counts (plus
         one slot for a null) when every projected attribute has
         statistics. *)
      let input = cardinality ~stats e in
      let cap =
        Attr.Set.fold
          (fun a acc ->
            match (acc, column stats a e) with
            | None, _ | _, None -> None
            | Some cap, Some (c, _) ->
                Some
                  (cap
                  *. float (c.Stats.distinct + if c.Stats.nulls > 0 then 1 else 0)
                  ))
          x (Some 1.)
      in
      (match cap with Some cap -> Float.min input cap | None -> input)
  | Expr.Product (e1, e2) -> cardinality ~stats e1 *. cardinality ~stats e2
  | Expr.Equijoin (x, e1, e2) -> equijoin_cardinality ~stats x e1 e2
  | Expr.Union_join (x, e1, e2) ->
      (* Section 6: the union join keeps the equijoin matches plus a
         null-padded remainder of each operand. *)
      equijoin_cardinality ~stats x e1 e2
      +. cardinality ~stats e1 +. cardinality ~stats e2
  | Expr.Union (e1, e2) -> cardinality ~stats e1 +. cardinality ~stats e2
  | Expr.Diff (e1, _) -> cardinality ~stats e1
  | Expr.Inter (e1, e2) ->
      Float.min (cardinality ~stats e1) (cardinality ~stats e2)
  | Expr.Divide (_, e1, _) -> selectivity *. cardinality ~stats e1
  | Expr.Rename (_, e) -> cardinality ~stats e

(* Containment-of-values on each join attribute, discounted by both
   null fractions — a null never matches anything in the sure join
   (Table III again). Falls back to the fixed {!join_selectivity} as
   soon as one attribute lacks statistics on either side. *)
and equijoin_cardinality ~stats x e1 e2 =
  let n1 = cardinality ~stats e1 and n2 = cardinality ~stats e2 in
  let sel =
    Attr.Set.fold
      (fun a acc ->
        match (acc, column stats a e1, column stats a e2) with
        | None, _, _ | _, None, _ | _, _, None -> None
        | Some acc, Some c1, Some c2 ->
            Some
              (acc *. not_null c1 *. not_null c2
              /. Float.max (distinct c1) (distinct c2)))
      x (Some 1.)
  in
  match sel with
  | Some sel -> sel *. n1 *. n2
  | None -> join_selectivity *. n1 *. n2

let rec cost ~stats expr =
  let card = cardinality ~stats in
  match expr with
  | Expr.Rel _ | Expr.Const _ -> 0.
  | Expr.Select (p, Expr.Product (e1, e2))
    when select_product_probe stats p e2 <> None
         || select_product_probe stats p e1 <> None ->
      (* A declared index on one factor turns the equality selection
         over the product into a probe pass over the other factor:
         the product is never materialized. *)
      if select_product_probe stats p e2 <> None then
        card e1 +. cost ~stats e1
      else card e2 +. cost ~stats e2
  | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Rename (_, e) ->
      card e +. cost ~stats e
  | Expr.Equijoin (x, e1, e2) ->
      (* A declared index on the build side turns the join into a probe
         pass over the left operand: the build side is never evaluated
         or materialized. *)
      if probe_target stats x e2 <> None then card e1 +. cost ~stats e1
      else (card e1 *. card e2) +. cost ~stats e1 +. cost ~stats e2
  | Expr.Product (e1, e2)
  | Expr.Union_join (_, e1, e2)
  | Expr.Diff (e1, e2)
  | Expr.Inter (e1, e2)
  | Expr.Divide (_, e1, e2) ->
      (card e1 *. card e2) +. cost ~stats e1 +. cost ~stats e2
  | Expr.Union (e1, e2) ->
      card e1 +. card e2 +. cost ~stats e1 +. cost ~stats e2
