open Nullrel

let prefix_mapping v attrs =
  List.map (fun a -> (a, Quel.Resolve.prefixed v (Attr.name a))) attrs

let query ~schemas (q : Quel.Ast.query) =
  let range_plan (v, rel_name) =
    match schemas rel_name with
    | None -> raise (Quel.Resolve.Error ("unknown relation " ^ rel_name))
    | Some attrs -> Expr.Rename (prefix_mapping v attrs, Expr.Rel rel_name)
  in
  let source =
    match List.map range_plan q.Quel.Ast.ranges with
    | [] -> raise (Quel.Resolve.Error "a query needs at least one range clause")
    | first :: rest -> List.fold_left (fun acc e -> Expr.Product (acc, e)) first rest
  in
  let selected =
    match q.Quel.Ast.where with
    | None -> source
    | Some cond -> Expr.Select (Quel.Eval.predicate_of_cond cond, source)
  in
  let prefixed_targets =
    List.map (fun (v, a) -> Quel.Resolve.prefixed v a) q.Quel.Ast.targets
  in
  let output_mapping =
    List.map2
      (fun (v, a) prefixed ->
        (prefixed, Quel.Eval.target_attr q.Quel.Ast.targets (v, a)))
      q.Quel.Ast.targets prefixed_targets
  in
  let projected =
    Expr.Project (Attr.Set.of_list prefixed_targets, selected)
  in
  let needs_rename =
    List.exists (fun (o, n) -> not (Attr.equal o n)) output_mapping
  in
  if needs_rename then Expr.Rename (output_mapping, projected) else projected

(* With statistics, hint each join node's dispatch from the estimated
   probe side (the hash join probes its left operand) instead of
   leaving the physical operator to measure the actual input. A join
   whose build side is covered by a declared secondary index is
   dispatched [Indexed]: the probe loop runs sequentially against the
   shared persistent index. *)
let join_strategy_of ~stats node =
  match node with
  | Expr.Equijoin (x, e1, e2) ->
      if Cost.probe_target stats x e2 <> None then Kernel.Indexed
      else
        Kernel.strategy_for
          (int_of_float (Float.max 0. (Cost.cardinality ~stats e1)))
  | Expr.Union_join (_, e1, _) ->
      Kernel.strategy_for
        (int_of_float (Float.max 0. (Cost.cardinality ~stats e1)))
  | Expr.Select (p, Expr.Product (e1, e2))
    when Cost.select_product_probe stats p e2 <> None
         || Cost.select_product_probe stats p e1 <> None ->
      Kernel.Indexed
  | _ -> Kernel.Auto

(* The probe a declared secondary index serves for one join node, seen
   through the plan's renames. [probe_for] supplies the raw probe over
   a base relation (the shells wire {!Storage.Catalog.equi_probe});
   the translations from {!Cost.probe_target} carry probe tuples down
   to base names and indexed hits back up. *)
let index_probe_of ~stats ~probe_for node =
  match node with
  | Expr.Equijoin (x, _, e2) -> (
      match Cost.probe_target stats x e2 with
      | None -> None
      | Some (name, x0, down, up) -> (
          match probe_for name x0 with
          | None -> None
          | Some p -> Some (fun t -> List.map up (p (down t)))))
  | Expr.Select (p, Expr.Product (_, e2)) -> (
      (* The compiled-query join shape: a cross-scope equality directly
         over a product. Key each left tuple's value of the non-indexed
         attribute into the index under the indexed attribute's base
         name; a null key surely-equals nothing, so it probes to
         nothing. *)
      match Cost.select_product_probe stats p e2 with
      | None -> None
      | Some (ka, kb, (name, x0, down, up)) -> (
          match probe_for name x0 with
          | None -> None
          | Some p ->
              Some
                (fun t ->
                  match Tuple.get t ka with
                  | Value.Null -> []
                  | v -> List.map up (p (down (Tuple.of_list [ (kb, v) ]))))))
  | _ -> None

(* Physical execution serves the Ni_lower dialect only: every operator
   of the physical algebra bakes subsumption minimization in (that is
   the paper's Section 4 discipline), so the plain-set dialects would
   lose their Codd-style row identity inside any plan node. They
   evaluate through the calculus evaluator instead — the planner
   dispatches on the dialect up front, and the Ni_lower path below is
   byte-for-byte the pre-dialect pipeline (held within 3% by E25). *)
let run_bands ?semantics (db : Quel.Resolve.db) q =
  let ctx = Quel.Eval.ctx ?semantics () in
  Quel.Eval.query ctx db q

let run ?(optimize = true) ?stats ?semantics ?(index_probe = fun _ -> None)
    (db : Quel.Resolve.db) q =
  let sem =
    match semantics with Some sem -> sem | None -> Semantics.current ()
  in
  match sem.Semantics.dialect with
  | Semantics.Codd_maybe | Semantics.Sql_3vl | Semantics.Certain ->
      let b = run_bands ~semantics:sem db q in
      { Quel.Eval.attrs = b.Quel.Eval.attrs;
        rel = Xrel.of_relation b.Quel.Eval.sure }
  | Semantics.Ni_lower ->
  Quel.Resolve.check db q;
  let schemas name =
    Option.map (fun (schema, _) -> Schema.attrs schema) (List.assoc_opt name db)
  in
  let plan = query ~schemas q in
  let env_scope name =
    Option.map (fun (schema, _) -> Schema.attr_set schema) (List.assoc_opt name db)
  in
  let plan =
    if optimize then Rewrite.optimize ?cost:stats ~env_scope plan else plan
  in
  let env name = Option.map snd (List.assoc_opt name db) in
  let join_strategy =
    match stats with
    | None -> fun _ -> Kernel.Auto
    | Some stats -> join_strategy_of ~stats
  in
  let attrs =
    List.map (Quel.Eval.target_attr q.Quel.Ast.targets) q.Quel.Ast.targets
  in
  { Quel.Eval.attrs; rel = Expr.eval ~join_strategy ~index_probe ~env plan }
