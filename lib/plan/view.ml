open Nullrel

type env = (string * Quel.Ast.query) list

exception Cycle of string
exception Error of string

let errorf fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* The (label -> source) mapping a view exposes. Labels must be bare
   attribute names — a view whose target list is ambiguous (duplicate
   attribute names forcing qualified labels) cannot be referenced from
   an outer query, so it is rejected here. *)
let output_mapping view_name (view : Quel.Ast.query) =
  List.map
    (fun (w, a) ->
      let label = Quel.Eval.target_attr view.Quel.Ast.targets (w, a) in
      if String.contains (Attr.name label) '.' then
        errorf "view %s: ambiguous target %s.%s needs distinct column names"
          view_name w a;
      (Attr.name label, (w, a)))
    view.Quel.Ast.targets

let rename_var ~outer w = outer ^ "$" ^ w

let rec rename_cond f = function
  | Quel.Ast.Cmp (t1, cmp, t2) -> Quel.Ast.Cmp (f t1, cmp, f t2)
  | Quel.Ast.And (c1, c2) -> Quel.Ast.And (rename_cond f c1, rename_cond f c2)
  | Quel.Ast.Or (c1, c2) -> Quel.Ast.Or (rename_cond f c1, rename_cond f c2)
  | Quel.Ast.Not c -> Quel.Ast.Not (rename_cond f c)

(* Unfold the range (v, view_name) inside [q]. *)
let unfold_range ~view_name ~view q v =
  let mapping = output_mapping view_name view in
  let fresh w = rename_var ~outer:v w in
  (* references v.label become (fresh w).a *)
  let rewrite_ref (var, label) =
    if String.equal var v then
      match List.assoc_opt label mapping with
      | Some (w, a) -> (fresh w, a)
      | None ->
          errorf "view %s has no column %s (referenced as %s.%s)" view_name
            label v label
    else (var, label)
  in
  let rewrite_term = function
    | Quel.Ast.Attr (var, label) ->
        let var, label = rewrite_ref (var, label) in
        Quel.Ast.Attr (var, label)
    | Quel.Ast.Const _ as c -> c
  in
  let freshen_term = function
    | Quel.Ast.Attr (w, a) -> Quel.Ast.Attr (fresh w, a)
    | Quel.Ast.Const _ as c -> c
  in
  let ranges =
    List.concat_map
      (fun (var, rel) ->
        if String.equal var v then
          List.map (fun (w, rel) -> (fresh w, rel)) view.Quel.Ast.ranges
        else [ (var, rel) ])
      q.Quel.Ast.ranges
  in
  let targets = List.map rewrite_ref q.Quel.Ast.targets in
  let outer_where = Option.map (rename_cond rewrite_term) q.Quel.Ast.where in
  let view_where = Option.map (rename_cond freshen_term) view.Quel.Ast.where in
  let where =
    match (outer_where, view_where) with
    | None, w | w, None -> w
    | Some a, Some b -> Some (Quel.Ast.And (a, b))
  in
  { Quel.Ast.ranges; targets; where }

let rec expand_guarded ~views ~visiting q =
  match
    List.find_opt (fun (_, rel) -> List.mem_assoc rel views) q.Quel.Ast.ranges
  with
  | None -> q
  | Some (v, view_name) ->
      if List.mem view_name visiting then raise (Cycle view_name);
      let definition =
        match List.assoc_opt view_name views with
        | Some d -> d
        | None -> errorf "no view named %s" view_name
      in
      let view =
        expand_guarded ~views ~visiting:(view_name :: visiting) definition
      in
      expand_guarded ~views ~visiting
        (unfold_range ~view_name ~view q v)

let expand ~views q = expand_guarded ~views ~visiting:[] q

let view_schema db ~views name =
  match List.assoc_opt name views with
  | None -> errorf "no view named %s" name
  | Some view ->
      let body = expand ~views view in
      let columns =
        List.map
          (fun (label, _) ->
            (* find the base attribute the (expanded) view retrieves *)
            let w, a =
              match List.assoc_opt label (output_mapping name body) with
              | Some source -> source
              | None -> errorf "view %s: no column %s after expansion" name label
            in
            let rel_name =
              match List.assoc_opt w body.Quel.Ast.ranges with
              | Some r -> r
              | None -> errorf "view %s: unbound variable %s" name w
            in
            let schema, _ = Quel.Resolve.relation db rel_name in
            match Schema.domain schema (Attr.make a) with
            | Some d -> (label, d)
            | None ->
                errorf "view %s: %s has no attribute %s" name rel_name a)
          (output_mapping name view)
      in
      Schema.make name columns

let materialize db ~views name =
  match List.assoc_opt name views with
  | None -> errorf "no view named %s" name
  | Some view ->
      let body = expand ~views view in
      let result = Quel.Eval.run db body in
      (view_schema db ~views name, result.Quel.Eval.rel)

let db_with_views db ~views =
  List.fold_left
    (fun acc (name, _) ->
      if List.mem_assoc name acc then
        errorf "view %s shadows an existing relation" name
      else (name, materialize db ~views name) :: acc)
    db views
