(** A unit-work cost model for plans, null-aware when statistics are
    available.

    Cardinalities are estimated top-down from base-relation statistics;
    cost is the sum over operator nodes of the work each performs on
    its estimated inputs (pairwise operators pay the product of their
    input sizes — the paper's own O(|R1| x |R2|) accounting).

    A {!source} supplies what is known about base relations. With only
    row counts the model degrades to the historical fixed
    selectivities; with full {!Stats.table} summaries the estimates
    become null-aware: under Table III a comparison that touches a null
    evaluates to [ni] and only TRUE tuples qualify, so every predicate
    and join estimate is discounted by the null fractions of the
    columns involved, equality selectivities come from distinct counts
    (containment of values for joins), and range predicates interpolate
    against the observed min/max of integer columns. *)

type source = {
  rowcount : string -> int option;
      (** Live row count of a base relation (cheap, always current). *)
  table : string -> Stats.table option;
      (** Collected statistics, when fresh ones exist. *)
  equipped : string -> Nullrel.Attr.Set.t -> bool;
      (** Whether a declared secondary index covers exactly these
          attributes of the named base relation (the shells wire
          [Storage.Catalog.has_equi]). An equipped equijoin build side
          is costed as a probe pass — the build side is never
          materialized — and dispatched [Indexed]. *)
}

val of_rowcount : (string -> int option) -> source
(** A source with row counts only — the pre-statistics cost model,
    with no statistics tables and no indexes. *)

val probe_target :
  source ->
  Nullrel.Attr.Set.t ->
  Expr.t ->
  (string
  * Nullrel.Attr.Set.t
  * (Nullrel.Tuple.t -> Nullrel.Tuple.t)
  * (Nullrel.Tuple.t -> Nullrel.Tuple.t))
  option
(** [probe_target stats x e] identifies a join arm that bottoms out,
    through renames only, in a base relation equipped with an index on
    exactly the join attributes [x]: the base name, the attributes
    under their base names, and the tuple translations [down] (probe
    tuple into base scope) and [up] (indexed hit back into the node's
    scope). [None] when the arm is not that shape or nothing covers
    it. *)

val select_product_probe :
  source ->
  Nullrel.Predicate.t ->
  Expr.t ->
  (Nullrel.Attr.t
  * Nullrel.Attr.t
  * (string
    * Nullrel.Attr.Set.t
    * (Nullrel.Tuple.t -> Nullrel.Tuple.t)
    * (Nullrel.Tuple.t -> Nullrel.Tuple.t)))
  option
(** [select_product_probe stats p e2] recognizes the join shape
    compiled queries actually take — a cross-scope equality selection
    [a = b] directly over a product (the algebra cannot merge two
    differently-named columns, so compiled plans never contain
    [Equijoin]) — and finds a {!probe_target} for whichever side of
    the equality the right factor [e2] binds. Returns [(ka, kb, tgt)]:
    the left factor's attribute [ka] supplies the probe key, looked up
    under the right factor's attribute [kb] through target [tgt].
    Serving the selection by index probes is sound because a sure
    equality is upward-closed under subsumption, so the selection
    commutes with the minimization the product bakes in. *)

val equipped_join : source -> Expr.t -> bool
(** True exactly on [Equijoin] nodes whose build (right) arm has a
    {!probe_target}, and on [Select]-over-[Product] nodes with a
    {!select_product_probe}. *)

val column : source -> Nullrel.Attr.t -> Expr.t -> (Stats.column * int) option
(** [column stats a e] digs to a base relation below [e] that binds
    [a] (inverting renames) and returns its summary plus the base row
    count. Exposed for the benchmark harness. *)

val selectivity : float
(** Fallback fraction of tuples surviving a comparison with no
    statistics (1/3). *)

val join_selectivity : float
(** Fallback equijoin selectivity with no statistics (0.1). *)

val default_cardinality : float
(** Estimate for a base relation the source knows nothing about. *)

val cardinality : stats:source -> Expr.t -> float
(** Estimated output cardinality. *)

val cost : stats:source -> Expr.t -> float
(** Estimated total work of evaluating the plan bottom-up. *)
