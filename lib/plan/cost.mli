(** A unit-work cost model for plans, null-aware when statistics are
    available.

    Cardinalities are estimated top-down from base-relation statistics;
    cost is the sum over operator nodes of the work each performs on
    its estimated inputs (pairwise operators pay the product of their
    input sizes — the paper's own O(|R1| x |R2|) accounting).

    A {!source} supplies what is known about base relations. With only
    row counts the model degrades to the historical fixed
    selectivities; with full {!Stats.table} summaries the estimates
    become null-aware: under Table III a comparison that touches a null
    evaluates to [ni] and only TRUE tuples qualify, so every predicate
    and join estimate is discounted by the null fractions of the
    columns involved, equality selectivities come from distinct counts
    (containment of values for joins), and range predicates interpolate
    against the observed min/max of integer columns. *)

type source = {
  rowcount : string -> int option;
      (** Live row count of a base relation (cheap, always current). *)
  table : string -> Stats.table option;
      (** Collected statistics, when fresh ones exist. *)
}

val of_rowcount : (string -> int option) -> source
(** A source with row counts only — the pre-statistics cost model. *)

val column : source -> Nullrel.Attr.t -> Expr.t -> (Stats.column * int) option
(** [column stats a e] digs to a base relation below [e] that binds
    [a] (inverting renames) and returns its summary plus the base row
    count. Exposed for the benchmark harness. *)

val selectivity : float
(** Fallback fraction of tuples surviving a comparison with no
    statistics (1/3). *)

val join_selectivity : float
(** Fallback equijoin selectivity with no statistics (0.1). *)

val default_cardinality : float
(** Estimate for a base relation the source knows nothing about. *)

val cardinality : stats:source -> Expr.t -> float
(** Estimated output cardinality. *)

val cost : stats:source -> Expr.t -> float
(** Estimated total work of evaluating the plan bottom-up. *)
