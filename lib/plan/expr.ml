open Nullrel

type t =
  | Rel of string
  | Const of Xrel.t
  | Select of Predicate.t * t
  | Project of Attr.Set.t * t
  | Product of t * t
  | Equijoin of Attr.Set.t * t * t
  | Union_join of Attr.Set.t * t * t
  | Union of t * t
  | Diff of t * t
  | Inter of t * t
  | Divide of Attr.Set.t * t * t
  | Rename of (Attr.t * Attr.t) list * t

exception Unbound_relation of string

let op_label = function
  | Rel name -> name
  | Const _ -> "const"
  | Select _ -> "select"
  | Project _ -> "project"
  | Product _ -> "product"
  | Equijoin _ -> "equijoin"
  | Union_join _ -> "union-join"
  | Union _ -> "union"
  | Diff _ -> "diff"
  | Inter _ -> "inter"
  | Divide _ -> "divide"
  | Rename _ -> "rename"

(* Physical-operator seams. The planner sits below the storage layer
   in the library graph, so it cannot name the hash join directly;
   the shells and the CLI install [Storage.Join.hash_equijoin] (and
   friends) here at load time — same inverted-dependency idiom as
   [Obs.Metrics.on_hot_change]. The first argument is the planner's
   dispatch hint ([Kernel.strategy], derived from estimated
   cardinalities when statistics are available); the default logical
   operators ignore it, so a bare [eval] stays correct without any
   installation. *)
let equijoin_impl :
    (Kernel.strategy -> Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t) ref =
  ref (fun _ x r1 r2 -> Algebra.equijoin x r1 r2)

let union_join_impl :
    (Kernel.strategy -> Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t) ref =
  ref (fun _ x r1 r2 -> Algebra.union_join x r1 r2)

(* Equijoin against a pre-built equality probe (a declared secondary
   index served by the catalog): the build side is never materialized.
   The default is a governed sequential probe loop, so a bare [eval]
   handed an [index_probe] stays correct without any installation; the
   shells install [Storage.Join.probe_equijoin] for the parallel-aware
   version. *)
let equijoin_probe_impl :
    (Kernel.strategy ->
    Attr.Set.t ->
    Xrel.t ->
    (Tuple.t -> Tuple.t list) ->
    Xrel.t)
    ref =
  ref (fun _ _ r1 probe ->
      Xrel.of_relation
        (List.fold_left
           (fun acc t1 ->
             Exec.tick ();
             List.fold_left
               (fun acc t2 ->
                 Exec.tick ();
                 match Tuple.join t1 t2 with
                 | Some joined -> Relation.add joined acc
                 | None -> acc)
               acc (probe t1))
           Relation.empty (Xrel.to_list r1)))

let rec eval ?(join_strategy = fun _ -> Kernel.Auto)
    ?(index_probe = fun _ -> None) ~env e =
  let eval = eval ~join_strategy ~index_probe in
  Exec.checkpoint ();
  Obs.Span.with_span (op_label e) (fun () ->
      match e with
      | Rel name -> (
          match env name with
          | Some x -> x
          | None -> raise (Unbound_relation name))
      | Const x -> x
      | Select (p, e) as node -> (
          (* Compiled queries join by a cross-scope equality selection
             over a product (the algebra cannot merge two differently-
             named columns, so [Equijoin] never appears in them); when
             a declared index on the right factor serves the equality,
             probe it per left tuple and never materialize the
             product. Sound because a sure equality is upward-closed
             under subsumption, so selection commutes with the
             minimization the product bakes in. *)
          match e with
          | Product (e1, e2) -> (
              match index_probe node with
              | Some probe ->
                  !equijoin_probe_impl (join_strategy node)
                    (Predicate.attrs p) (eval ~env e1) probe
              | None -> (
                  (* The product is symmetric, so when the indexed
                     factor sits on the left (the cost-based reorder
                     puts the smallest factor there), probe the
                     commuted node instead. *)
                  let commuted = Select (p, Product (e2, e1)) in
                  match index_probe commuted with
                  | Some probe ->
                      !equijoin_probe_impl (join_strategy commuted)
                        (Predicate.attrs p) (eval ~env e2) probe
                  | None -> Algebra.select p (eval ~env e)))
          | _ -> Algebra.select p (eval ~env e))
      | Project (x, e) -> Algebra.project x (eval ~env e)
      | Product (e1, e2) -> Algebra.product (eval ~env e1) (eval ~env e2)
      | Equijoin (x, e1, e2) as node -> (
          (* A probe served by a declared index replaces evaluating the
             build side entirely. *)
          match index_probe node with
          | Some probe ->
              !equijoin_probe_impl (join_strategy node) x (eval ~env e1) probe
          | None ->
              !equijoin_impl (join_strategy node) x (eval ~env e1)
                (eval ~env e2))
      | Union_join (x, e1, e2) as node ->
          !union_join_impl (join_strategy node) x (eval ~env e1) (eval ~env e2)
      | Union (e1, e2) -> Xrel.union (eval ~env e1) (eval ~env e2)
      | Diff (e1, e2) -> Xrel.diff (eval ~env e1) (eval ~env e2)
      | Inter (e1, e2) -> Xrel.inter (eval ~env e1) (eval ~env e2)
      | Divide (y, e1, e2) -> Algebra.divide y (eval ~env e1) (eval ~env e2)
      | Rename (mapping, e) -> Algebra.rename mapping (eval ~env e))

let rec scope_bound ~env_scope = function
  | Rel name -> (
      match env_scope name with
      | Some s -> s
      | None -> raise (Unbound_relation name))
  | Const x -> Xrel.scope x
  | Select (_, e) -> scope_bound ~env_scope e
  | Project (x, e) -> Attr.Set.inter x (scope_bound ~env_scope e)
  | Product (e1, e2) | Equijoin (_, e1, e2) | Union_join (_, e1, e2)
  | Union (e1, e2) ->
      Attr.Set.union (scope_bound ~env_scope e1) (scope_bound ~env_scope e2)
  | Diff (e1, _) -> scope_bound ~env_scope e1
  | Inter (e1, e2) ->
      Attr.Set.inter (scope_bound ~env_scope e1) (scope_bound ~env_scope e2)
  | Divide (y, _, _) -> y
  | Rename (mapping, e) ->
      Attr.Set.map
        (fun a ->
          match List.find_opt (fun (old, _) -> Attr.equal old a) mapping with
          | Some (_, fresh) -> fresh
          | None -> a)
        (scope_bound ~env_scope e)

let rec size = function
  | Rel _ | Const _ -> 0
  | Select (_, e) | Project (_, e) | Rename (_, e) -> 1 + size e
  | Product (e1, e2)
  | Equijoin (_, e1, e2)
  | Union_join (_, e1, e2)
  | Union (e1, e2)
  | Diff (e1, e2)
  | Inter (e1, e2)
  | Divide (_, e1, e2) ->
      1 + size e1 + size e2

let rec equal e1 e2 =
  match (e1, e2) with
  | Rel n1, Rel n2 -> String.equal n1 n2
  | Const x1, Const x2 -> Xrel.equal x1 x2
  | Select (p1, a), Select (p2, b) -> p1 = p2 && equal a b
  | Project (x1, a), Project (x2, b) -> Attr.Set.equal x1 x2 && equal a b
  | Product (a1, b1), Product (a2, b2) -> equal a1 a2 && equal b1 b2
  | Equijoin (x1, a1, b1), Equijoin (x2, a2, b2)
  | Union_join (x1, a1, b1), Union_join (x2, a2, b2)
  | Divide (x1, a1, b1), Divide (x2, a2, b2) ->
      Attr.Set.equal x1 x2 && equal a1 a2 && equal b1 b2
  | Union (a1, b1), Union (a2, b2)
  | Diff (a1, b1), Diff (a2, b2)
  | Inter (a1, b1), Inter (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | Rename (m1, a), Rename (m2, b) -> m1 = m2 && equal a b
  | ( ( Rel _ | Const _ | Select _ | Project _ | Product _ | Equijoin _
      | Union_join _ | Union _ | Diff _ | Inter _ | Divide _ | Rename _ ),
      _ ) ->
      false

let pp_attrs ppf x =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map Attr.name (Attr.Set.elements x)))

let rec pp ppf = function
  | Rel name -> Format.pp_print_string ppf name
  | Const x -> Format.fprintf ppf "const<%d>" (Xrel.cardinal x)
  | Select (p, e) -> Format.fprintf ppf "select[%a](%a)" Predicate.pp p pp e
  | Project (x, e) -> Format.fprintf ppf "project%a(%a)" pp_attrs x pp e
  | Product (e1, e2) -> Format.fprintf ppf "(%a x %a)" pp e1 pp e2
  | Equijoin (x, e1, e2) ->
      Format.fprintf ppf "(%a join%a %a)" pp e1 pp_attrs x pp e2
  | Union_join (x, e1, e2) ->
      Format.fprintf ppf "(%a ujoin%a %a)" pp e1 pp_attrs x pp e2
  | Union (e1, e2) -> Format.fprintf ppf "(%a u %a)" pp e1 pp e2
  | Diff (e1, e2) -> Format.fprintf ppf "(%a - %a)" pp e1 pp e2
  | Inter (e1, e2) -> Format.fprintf ppf "(%a n %a)" pp e1 pp e2
  | Divide (y, e1, e2) ->
      Format.fprintf ppf "(%a /%a %a)" pp e1 pp_attrs y pp e2
  | Rename (mapping, e) ->
      let pp_one ppf (o, n) =
        Format.fprintf ppf "%a->%a" Attr.pp o Attr.pp n
      in
      Format.fprintf ppf "rename[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           pp_one)
        mapping pp e
