(** EXPLAIN ANALYZE: evaluate a plan while annotating every operator
    node with its estimated vs. actual cardinality, inclusive governor
    ticks, and wall time.

    Measurement uses {!Obs.Span.timed}, which works without globally
    enabling tracing, and the evaluation runs under whatever
    {!Nullrel.Exec} governor is ambient — an analyzed query is still
    subject to timeouts and budgets. *)

type node = {
  label : string;  (** {!Expr.op_label} of the operator *)
  est_rows : float;  (** {!Cost.cardinality} estimate *)
  actual_rows : int;
  ticks : int;  (** inclusive: this node plus its subtree *)
  elapsed_s : float;  (** inclusive wall time *)
  children : node list;
}

val run :
  ?join_strategy:(Expr.t -> Nullrel.Kernel.strategy) ->
  stats:Cost.source ->
  env:(string -> Nullrel.Xrel.t option) ->
  Expr.t ->
  Nullrel.Xrel.t * node
(** Evaluate and profile. Raises {!Expr.Unbound_relation} like
    {!Expr.eval}, and propagates governor aborts. [join_strategy] as
    in {!Expr.eval}. *)

val render : ?semantics:string -> node -> string
(** Aligned text tree: one row per operator (children indented), with
    est / actual / est-over-actual / ticks / ms columns (the ratio
    prints ["-"] on an actual-empty node). [semantics] prepends a
    ["semantics: NAME"] line naming the dialect the plan was analyzed
    under (physical plans always run the [Ni_lower] pipeline; the
    annotation makes that dispatch visible). *)
