(** Executing QUEL update statements against a catalog.

    The semantics are Section 7's: [append] is lattice union, [delete]
    is difference, [replace] is a deletion followed by an addition.
    Because the lower-bound discipline extends to updates, [delete] and
    [replace] touch only the tuples that {e surely} match the
    qualification — a null never matches, so incomplete tuples are never
    destroyed by a value-based condition.

    Every executed update re-checks the target relation against its
    schema ({!Storage.Catalog.Violation} aborts the update; the catalog
    is unchanged). *)


(** Errors — an unknown relation, an unknown attribute in an
    assignment, a qualification referencing a variable other than the
    target — raise {!Nullrel.Exec_error.Error} with [Bad_input]. *)

type outcome = {
  catalog : Storage.Catalog.t;  (** The catalog after the statement. *)
  message : string;  (** One-line human summary ("2 tuples deleted"). *)
  result : Quel.Eval.result option;
      (** The table, for [retrieve] statements only. Under a reporting
          dialect this is the sure band re-minimized into the
          [Xrel.t]-shaped compat result; [bands] has the plain sets. *)
  bands : Quel.Eval.bands option;
      (** The dialect's banded answer, for [retrieve] statements
          evaluated under a non-[Ni_lower] {!Nullrel.Semantics}
          dialect; [None] for writes and for [Ni_lower] reads. *)
  touched : string list;
      (** Every relation the statement wrote, sorted — the target plus
          any relations its constraints cascaded into. Empty for reads
          and constraint DDL. *)
  deltas : Constr.delta list;
      (** The net per-relation changes actually applied, in firing
          order (the statement's own delta, then the cascades). The
          durable layer journals these directly, so the journaling
          cost is bounded by the delta rather than the relation. Empty
          for reads, DDL, no-op writes, and on the legacy path
          ({!incremental} off), which re-diffs catalogs instead. *)
}

val incremental : bool ref
(** Kill switch for the incremental write path (default on). When off,
    statements run the legacy full-rewrite pipeline —
    [Update.insert] / re-minimize / [Catalog.set_relation] — which is
    the oracle the incremental discipline is property-tested against
    and the baseline bench E26 measures the probe-vs-rescan curve
    over. *)

val exec :
  ?semantics:Nullrel.Semantics.t -> Storage.Catalog.t ->
  Quel.Ast.statement -> outcome
(** Executes one statement. [semantics] (default
    {!Nullrel.Semantics.current}) selects the dialect [retrieve]
    answers under — writes always qualify tuples by the paper's
    lower-bound rule regardless, so updates are dialect-independent.
    Execution is {e including} incremental constraint
    enforcement: inserts and updates are validated against the declared
    unique / not-null / foreign-key constraints using index probes, and
    a delete from a referenced relation fires its cascade / set-null
    closure as part of the same statement — all of it reflected in the
    returned catalog, or none of it ({!Constr.Error} aborts with the
    catalog unchanged). [constrain] verifies the existing data first;
    [unconstrain] drops by name. Write statements targeting the
    reserved [sys_] namespace are rejected with [Bad_input] — those are
    the virtual system-catalog relations (lib/sysview), computed views
    that no statement can store into. *)

val exec_string :
  ?semantics:Nullrel.Semantics.t -> Storage.Catalog.t -> string -> outcome
(** [exec] composed with {!Quel.Parser.parse_statement}. *)

val is_read : Quel.Ast.statement -> bool
(** True exactly for [retrieve]. *)

val target_relation : Quel.Ast.statement -> string option
(** The relation a statement writes: [None] for [retrieve] and
    [unconstrain], the target name otherwise. The session layer uses
    this to maintain per-transaction write sets. *)

val ops_between :
  Storage.Catalog.t ->
  Storage.Catalog.t ->
  string list ->
  Storage.Wal.op list
(** [ops_between cat0 cat1 touched] is the journal-operation list that
    turns [cat0] into [cat1]: one non-noop {!Storage.Wal.Change} per
    touched relation plus the constraint-DDL difference — the payload
    of one atomic transaction record. *)

(** {1 Durable mode}

    A durable session pins the catalog to a directory with
    write-ahead-journalled updates: every statement is appended to
    [DIR/wal] ({!Storage.Wal}) {e before} its effect is applied, and a
    full crash-safe checkpoint ({!Storage.Persist.save}) is cut every
    [checkpoint_every] statements. A crash at any moment therefore
    loses at most the statement whose journal append was interrupted;
    {!open_durable} (via {!Storage.Persist.recover}) replays the
    committed journal tail and leaves the directory clean again. *)

type durable

val open_durable :
  ?io:Storage.Io.t ->
  ?checkpoint_every:int ->
  dir:string ->
  unit ->
  durable * Storage.Persist.report
(** Opens (creating if absent) a durable catalog directory, running
    full recovery first. The report says what recovery found; a
    relation quarantined as [Corrupt] is absent from the session.
    Default [checkpoint_every] is 64. *)

val durable_catalog : durable -> Storage.Catalog.t
val durable_lsn : durable -> int

val exec_durable : durable -> Quel.Ast.statement -> durable * outcome
(** Journal, apply, checkpoint-if-due. Statements that change nothing
    (including every [retrieve]) are not journaled. Exceptions from the
    statement itself ({!Nullrel.Exec_error.Error},
    {!Storage.Catalog.Violation}) leave the session unchanged;
    exceptions from the filesystem propagate and the session value must
    be discarded — re-open to recover. A governed abort (timeout,
    budget, cancellation) is checked strictly {e before} the journal
    append, so it always leaves the directory at the last committed
    state. *)

val exec_durable_string : durable -> string -> durable * outcome
val checkpoint : durable -> durable
(** Forces a checkpoint now (also empties the journal). *)
