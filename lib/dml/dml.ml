open Nullrel

let errorf fmt = Exec_error.bad_inputf fmt

type outcome = {
  catalog : Storage.Catalog.t;
  message : string;
  result : Quel.Eval.result option;
}

let flip = function
  | Predicate.Eq -> Predicate.Eq
  | Predicate.Neq -> Predicate.Neq
  | Predicate.Lt -> Predicate.Gt
  | Predicate.Gt -> Predicate.Lt
  | Predicate.Le -> Predicate.Ge
  | Predicate.Ge -> Predicate.Le

(* Compile a single-variable qualification onto the base relation's own
   attribute names. *)
let rec base_predicate var = function
  | Quel.Ast.Cmp (Quel.Ast.Attr (v, a), cmp, Quel.Ast.Attr (w, b))
    when String.equal v var && String.equal w var ->
      Predicate.Cmp_attrs (Attr.make a, cmp, Attr.make b)
  | Quel.Ast.Cmp (Quel.Ast.Attr (v, a), cmp, Quel.Ast.Const k)
    when String.equal v var ->
      Predicate.Cmp_const (Attr.make a, cmp, k)
  | Quel.Ast.Cmp (Quel.Ast.Const k, cmp, Quel.Ast.Attr (v, a))
    when String.equal v var ->
      Predicate.Cmp_const (Attr.make a, flip cmp, k)
  | Quel.Ast.Cmp (Quel.Ast.Const k1, cmp, Quel.Ast.Const k2) ->
      Predicate.Const (Predicate.apply_comparison cmp k1 k2)
  | Quel.Ast.Cmp _ ->
      errorf "the qualification may only reference the variable %s" var
  | Quel.Ast.And (c1, c2) ->
      Predicate.And (base_predicate var c1, base_predicate var c2)
  | Quel.Ast.Or (c1, c2) ->
      Predicate.Or (base_predicate var c1, base_predicate var c2)
  | Quel.Ast.Not c -> Predicate.Not (base_predicate var c)

let where_predicate var = function
  | None -> Predicate.Const Tvl.True
  | Some c -> base_predicate var c

let relation_of cat rel =
  match Storage.Catalog.find cat rel with
  | Some entry -> entry
  | None -> errorf "unknown relation %s" rel

let tuple_of_assignments schema rel values =
  List.fold_left
    (fun t (a, v) ->
      let attr = Attr.make a in
      if not (Schema.mem schema attr) then
        errorf "relation %s has no attribute %s" rel a;
      if not (Value.is_null (Tuple.get t attr)) then
        errorf "attribute %s assigned twice" a;
      Tuple.set t attr v)
    Tuple.empty values

let plural n noun = Printf.sprintf "%d %s%s" n noun (if n = 1 then "" else "s")

let exec cat statement =
  match statement with
  | Quel.Ast.Retrieve q ->
      let result = Quel.Eval.run (Storage.Catalog.to_db cat) q in
      { catalog = cat; message = ""; result = Some result }
  | Quel.Ast.Append { rel; values } ->
      let schema, x = relation_of cat rel in
      let tuple = tuple_of_assignments schema rel values in
      let updated = Storage.Update.insert x [ tuple ] in
      let grew = Xrel.cardinal updated <> Xrel.cardinal x in
      {
        catalog = Storage.Catalog.set_relation cat rel updated;
        message =
          (if Xrel.equal updated x then "appended tuple added no information"
           else if grew then "1 tuple appended"
           else "1 tuple appended (absorbed less informative rows)");
        result = None;
      }
  | Quel.Ast.Delete { var; rel; where } ->
      let _, x = relation_of cat rel in
      let p = where_predicate var where in
      let updated = Storage.Update.delete_where p x in
      let removed = Xrel.cardinal x - Xrel.cardinal updated in
      {
        catalog = Storage.Catalog.set_relation cat rel updated;
        message = plural removed "tuple" ^ " deleted";
        result = None;
      }
  | Quel.Ast.Replace { var; rel; values; where } ->
      let schema, x = relation_of cat rel in
      let p = where_predicate var where in
      let patch = tuple_of_assignments schema rel values in
      let apply r =
        Tuple.fold (fun a v acc -> Tuple.set acc a v) patch r
      in
      let touched = Xrel.cardinal (Algebra.select p x) in
      let updated = Storage.Update.modify ~where:p ~using:apply x in
      {
        catalog = Storage.Catalog.set_relation cat rel updated;
        message = plural touched "tuple" ^ " replaced";
        result = None;
      }

let exec_string cat src = exec cat (Quel.Parser.parse_statement src)

(* ------------------------ durable mode ------------------------ *)

type durable = {
  dir : string;
  io : Storage.Io.t;
  cat : Storage.Catalog.t;
  lsn : int;
  dirty : int;  (** Journaled statements since the last checkpoint. *)
  every : int;
}

let durable_catalog d = d.cat
let durable_lsn d = d.lsn

let checkpoint d =
  Storage.Persist.save ~io:d.io ~lsn:d.lsn ~dir:d.dir d.cat;
  Storage.Wal.reset ~io:d.io ~dir:d.dir;
  { d with dirty = 0 }

let open_durable ?(io = Storage.Io.retrying Storage.Io.real)
    ?(checkpoint_every = 64) ~dir () =
  if checkpoint_every < 1 then
    Exec_error.bad_input "Dml.open_durable: checkpoint_every must be >= 1";
  let report =
    if io.Storage.Io.file_exists dir then Storage.Persist.recover ~io ~dir ()
    else begin
      (* a brand-new database: an empty, durable checkpoint *)
      Storage.Persist.save ~io ~dir Storage.Catalog.empty;
      Storage.Persist.load_report ~io ~dir ()
    end
  in
  ( {
      dir;
      io;
      cat = report.Storage.Persist.catalog;
      lsn = report.Storage.Persist.lsn;
      dirty = 0;
      every = checkpoint_every;
    },
    report )

let target_relation = function
  | Quel.Ast.Retrieve _ -> None
  | Quel.Ast.Append { rel; _ }
  | Quel.Ast.Delete { rel; _ }
  | Quel.Ast.Replace { rel; _ } ->
      Some rel

(* Journal, then apply, then (sometimes) checkpoint. The journal append
   is the commit point: a crash before it loses the statement, a crash
   after it is replayed by recovery, and the checkpoint itself is
   crash-safe ({!Storage.Persist.save}), so every interruption lands on
   either the last checkpoint or the last journaled commit. *)
let exec_durable d statement =
  (* Abort-before-apply: both cancellation points sit strictly before
     the journal append (the commit point), so a governed abort leaves
     the directory exactly at the last committed state — never between
     the append and the in-memory apply. *)
  Exec.checkpoint ();
  let outcome = exec d.cat statement in
  match target_relation statement with
  | None -> (d, outcome)
  | Some rel ->
      let before = Storage.Catalog.relation d.cat rel in
      let after = Storage.Catalog.relation outcome.catalog rel in
      let record =
        Storage.Wal.delta ~lsn:(d.lsn + 1) ~rel ~before ~after
      in
      if Storage.Wal.is_noop record then (d, outcome)
      else begin
        Exec.checkpoint ();
        Storage.Wal.append ~io:d.io ~dir:d.dir record;
        let d =
          { d with cat = outcome.catalog; lsn = d.lsn + 1; dirty = d.dirty + 1 }
        in
        let d = if d.dirty >= d.every then checkpoint d else d in
        (d, outcome)
      end

let exec_durable_string d src =
  exec_durable d (Quel.Parser.parse_statement src)
