open Nullrel

let errorf fmt = Exec_error.bad_inputf fmt

type outcome = {
  catalog : Storage.Catalog.t;
  message : string;
  result : Quel.Eval.result option;
  bands : Quel.Eval.bands option;
  touched : string list;
  deltas : Constr.delta list;
      (** The net per-relation changes actually applied — the statement's
          own delta followed by the cascades, in firing order. The
          durable layer journals these directly; empty for reads, DDL
          and no-op writes (and on the legacy full-rewrite path, which
          journals by re-diffing the catalogs instead). *)
}

(* Kill switch for the incremental write path: when off, every
   statement falls back to the legacy full-rewrite pipeline
   ([Update.insert] / re-minimize / [Catalog.set_relation]) — the
   oracle the incremental discipline is property-tested against, and
   the baseline bench E26 measures the probe-vs-rescan curve over. *)
let incremental = ref true

let flip = function
  | Predicate.Eq -> Predicate.Eq
  | Predicate.Neq -> Predicate.Neq
  | Predicate.Lt -> Predicate.Gt
  | Predicate.Gt -> Predicate.Lt
  | Predicate.Le -> Predicate.Ge
  | Predicate.Ge -> Predicate.Le

(* Compile a single-variable qualification onto the base relation's own
   attribute names. *)
let rec base_predicate var = function
  | Quel.Ast.Cmp (Quel.Ast.Attr (v, a), cmp, Quel.Ast.Attr (w, b))
    when String.equal v var && String.equal w var ->
      Predicate.Cmp_attrs (Attr.make a, cmp, Attr.make b)
  | Quel.Ast.Cmp (Quel.Ast.Attr (v, a), cmp, Quel.Ast.Const k)
    when String.equal v var ->
      Predicate.Cmp_const (Attr.make a, cmp, k)
  | Quel.Ast.Cmp (Quel.Ast.Const k, cmp, Quel.Ast.Attr (v, a))
    when String.equal v var ->
      Predicate.Cmp_const (Attr.make a, flip cmp, k)
  | Quel.Ast.Cmp (Quel.Ast.Const k1, cmp, Quel.Ast.Const k2) ->
      Predicate.Const (Predicate.apply_comparison cmp k1 k2)
  | Quel.Ast.Cmp _ ->
      errorf "the qualification may only reference the variable %s" var
  | Quel.Ast.And (c1, c2) ->
      Predicate.And (base_predicate var c1, base_predicate var c2)
  | Quel.Ast.Or (c1, c2) ->
      Predicate.Or (base_predicate var c1, base_predicate var c2)
  | Quel.Ast.Not c -> Predicate.Not (base_predicate var c)

let where_predicate var = function
  | None -> Predicate.Const Tvl.True
  | Some c -> base_predicate var c

let relation_of cat rel =
  match Storage.Catalog.find cat rel with
  | Some entry -> entry
  | None -> errorf "unknown relation %s" rel

let tuple_of_assignments schema rel values =
  List.fold_left
    (fun t (a, v) ->
      let attr = Attr.make a in
      if not (Schema.mem schema attr) then
        errorf "relation %s has no attribute %s" rel a;
      if not (Value.is_null (Tuple.get t attr)) then
        errorf "attribute %s assigned twice" a;
      Tuple.set t attr v)
    Tuple.empty values

let plural n noun = Printf.sprintf "%d %s%s" n noun (if n = 1 then "" else "s")

(* ---------------------- constraint plumbing ------------------- *)

let seed_delta rel ~before ~after =
  let b = Relation.tuples (Xrel.rep before)
  and a = Relation.tuples (Xrel.rep after) in
  {
    Constr.d_rel = rel;
    d_added = Tuple.Set.diff a b;
    d_removed = Tuple.Set.diff b a;
  }

let apply_delta cat (d : Constr.delta) =
  let _, x = relation_of cat d.Constr.d_rel in
  let tuples = Relation.tuples (Xrel.rep x) in
  let tuples = Tuple.Set.diff tuples d.Constr.d_removed in
  let tuples = Tuple.Set.union tuples d.Constr.d_added in
  Storage.Catalog.set_relation cat d.Constr.d_rel (Xrel.of_tuples tuples)

(* Run incremental enforcement for one statement's delta on [rel]. The
   extras — cascade removals and set-null rewrites, already in firing
   order — are part of the same transaction: they are applied here so
   the returned catalog is the whole committed state, and [touched]
   names every relation the transaction wrote so the durable layer can
   journal them as one atomic record. *)
let cascade_note extras =
  let removed, set_null =
    List.partition (fun d -> Tuple.Set.is_empty d.Constr.d_added) extras
  in
  let count per sets =
    List.map
      (fun d ->
        Printf.sprintf per
          (Tuple.Set.cardinal d.Constr.d_removed)
          d.Constr.d_rel)
      sets
  in
  match
    count "%d removed from %s" removed @ count "%d set to null in %s" set_null
  with
  | [] -> ""
  | parts -> "; cascade: " ^ String.concat ", " parts

let enforce_statement cat rel ~before ~after =
  let cat = Storage.Catalog.set_relation cat rel after in
  (* One branch when nothing is declared (or the kill switch is off):
     the seed diffs are never computed — the E23 overhead gate. *)
  let extras =
    if (not !Constr.enabled) || Storage.Catalog.constraints cat = [] then []
    else Storage.Catalog.enforce cat [ seed_delta rel ~before ~after ]
  in
  let cat = List.fold_left apply_delta cat extras in
  let touched =
    List.sort_uniq String.compare
      (rel :: List.map (fun d -> d.Constr.d_rel) extras)
  in
  (cat, touched, cascade_note extras)

(* The incremental counterpart: hand the statement delta to
   {!Storage.Catalog.apply_delta} — which maintains minimality by
   bounded probes and advances the relation's indexes — and seed
   enforcement with the net delta it returns, for free. Cascade deltas
   ride the same path, so a set-null rewrite whose patched row is
   absorbed by an existing tuple settles without any re-minimize. *)
let enforce_delta cat rel ~added ~removed =
  let cat, (net_a, net_r) =
    Storage.Catalog.apply_delta cat rel ~added ~removed
  in
  let noop = Tuple.Set.is_empty net_a && Tuple.Set.is_empty net_r in
  let seed = { Constr.d_rel = rel; d_added = net_a; d_removed = net_r } in
  let extras =
    if noop || (not !Constr.enabled) || Storage.Catalog.constraints cat = []
    then []
    else Storage.Catalog.enforce cat [ seed ]
  in
  let cat, applied_rev =
    List.fold_left
      (fun (cat, acc) (d : Constr.delta) ->
        let cat, (a, r) =
          Storage.Catalog.apply_delta cat d.Constr.d_rel
            ~added:(Tuple.Set.elements d.Constr.d_added)
            ~removed:(Tuple.Set.elements d.Constr.d_removed)
        in
        if Tuple.Set.is_empty a && Tuple.Set.is_empty r then (cat, acc)
        else
          ( cat,
            { Constr.d_rel = d.Constr.d_rel; d_added = a; d_removed = r }
            :: acc ))
      (cat, []) extras
  in
  let deltas = (if noop then [] else [ seed ]) @ List.rev applied_rev in
  let touched =
    List.sort_uniq String.compare
      (rel :: List.map (fun d -> d.Constr.d_rel) extras)
  in
  (cat, touched, cascade_note extras, (net_a, net_r), deltas)

let auto_name rel spec =
  match spec with
  | Quel.Ast.C_unique attrs -> String.concat "_" (("uq" :: rel :: attrs))
  | Quel.Ast.C_not_null attr -> String.concat "_" [ "nn"; rel; attr ]
  | Quel.Ast.C_foreign_key { target; _ } ->
      String.concat "_" [ "fk"; rel; target ]

let checked_attrs schema rel attrs =
  if attrs = [] then errorf "a constraint needs at least one attribute";
  List.map
    (fun a ->
      let attr = Attr.make a in
      if not (Schema.mem schema attr) then
        errorf "relation %s has no attribute %s" rel a;
      attr)
    attrs

let def_of_spec cat name rel spec =
  let schema, _ = relation_of cat rel in
  match spec with
  | Quel.Ast.C_unique attrs ->
      Constr.Unique { name; rel; attrs = checked_attrs schema rel attrs }
  | Quel.Ast.C_not_null attr ->
      Constr.Not_null
        { name; rel; attr = List.hd (checked_attrs schema rel [ attr ]) }
  | Quel.Ast.C_foreign_key { attrs; target; target_attrs; on_delete } ->
      let tschema, _ = relation_of cat target in
      let locals = checked_attrs schema rel attrs in
      let remotes = checked_attrs tschema target target_attrs in
      if List.length locals <> List.length remotes then
        errorf "foreign key lists %d local but %d target attributes"
          (List.length locals) (List.length remotes);
      let on_delete =
        match on_delete with
        | Quel.Ast.Restrict -> Constr.Restrict
        | Quel.Ast.Cascade -> Constr.Cascade
        | Quel.Ast.Set_null -> Constr.Set_null
      in
      Constr.Foreign_key
        { name; rel; target; pairs = List.combine locals remotes; on_delete }

(* The [sys_] namespace belongs to the virtual system catalog
   (lib/sysview): those relations are computed views of engine state,
   never stored, so no write statement may target them. The check is on
   the name prefix — dml sits below sysview in the library graph. *)
let reject_sys_target statement =
  match statement with
  | Quel.Ast.Retrieve _ -> ()
  | Quel.Ast.Append { rel; _ }
  | Quel.Ast.Delete { rel; _ }
  | Quel.Ast.Replace { rel; _ }
  | Quel.Ast.Constrain { rel; _ } ->
      if
        String.length rel >= 4
        && String.equal (String.sub rel 0 4) "sys_"
      then
        errorf "%s is a read-only system relation (the sys_ namespace \
                is virtual)" rel
  | Quel.Ast.Unconstrain _ -> ()

let exec ?semantics cat statement =
  reject_sys_target statement;
  match statement with
  | Quel.Ast.Retrieve q -> (
      let db = Storage.Catalog.to_db cat in
      let sem =
        match semantics with Some sem -> sem | None -> Semantics.current ()
      in
      match sem.Semantics.dialect with
      | Semantics.Ni_lower ->
          (* The planner-compatible path: updates and the durable journal
             only ever see this dialect's answers. *)
          let result = Quel.Eval.run db q in
          { catalog = cat; message = ""; result = Some result; bands = None;
            touched = []; deltas = [] }
      | Semantics.Codd_maybe | Semantics.Sql_3vl | Semantics.Certain ->
          let b = Quel.Eval.query (Quel.Eval.ctx ~semantics:sem ()) db q in
          { catalog = cat;
            message = "";
            result =
              Some { Quel.Eval.attrs = b.Quel.Eval.attrs;
                     rel = Xrel.of_relation b.Quel.Eval.sure };
            bands = Some b;
            touched = []; deltas = [] })
  | Quel.Ast.Append { rel; values } ->
      let schema, x = relation_of cat rel in
      let tuple = tuple_of_assignments schema rel values in
      if !incremental then begin
        let catalog, touched, note, (net_a, net_r), deltas =
          enforce_delta cat rel ~added:[ tuple ] ~removed:[]
        in
        {
          catalog;
          message =
            (if Tuple.Set.is_empty net_a && Tuple.Set.is_empty net_r then
               "appended tuple added no information"
             else if Tuple.Set.is_empty net_r then "1 tuple appended"
             else "1 tuple appended (absorbed less informative rows)")
            ^ note;
          result = None;
          bands = None;
          touched;
          deltas;
        }
      end
      else begin
        let updated = Storage.Update.insert x [ tuple ] in
        let catalog, touched, note =
          enforce_statement cat rel ~before:x ~after:updated
        in
        {
          catalog;
          message =
            (* An admitted tuple with no absorption grows the relation
               by exactly one; any other growth means subsumed rows
               were evicted (possibly several, so comparing against the
               old cardinality alone under-reports). *)
            (if Xrel.equal updated x then "appended tuple added no information"
             else if Xrel.cardinal updated = Xrel.cardinal x + 1 then
               "1 tuple appended"
             else "1 tuple appended (absorbed less informative rows)")
            ^ note;
          result = None;
          bands = None;
          touched;
          deltas = [];
        }
      end
  | Quel.Ast.Delete { var; rel; where } ->
      let _, x = relation_of cat rel in
      let p = where_predicate var where in
      if !incremental then begin
        let matched = Xrel.to_list (Xrel.filter (Predicate.holds p) x) in
        let catalog, touched, note, _net, deltas =
          enforce_delta cat rel ~added:[] ~removed:matched
        in
        {
          catalog;
          message = plural (List.length matched) "tuple" ^ " deleted" ^ note;
          result = None;
          bands = None;
          touched;
          deltas;
        }
      end
      else begin
        let updated = Storage.Update.delete_where p x in
        let removed = Xrel.cardinal x - Xrel.cardinal updated in
        let catalog, touched, note =
          enforce_statement cat rel ~before:x ~after:updated
        in
        {
          catalog;
          message = plural removed "tuple" ^ " deleted" ^ note;
          result = None;
          bands = None;
          touched;
          deltas = [];
        }
      end
  | Quel.Ast.Replace { var; rel; values; where } ->
      let schema, x = relation_of cat rel in
      let p = where_predicate var where in
      let patch = tuple_of_assignments schema rel values in
      let apply r =
        Tuple.fold (fun a v acc -> Tuple.set acc a v) patch r
      in
      if !incremental then begin
        let matched = Xrel.to_list (Algebra.select p x) in
        let images = List.map apply matched in
        let catalog, touched, note, _net, deltas =
          enforce_delta cat rel ~added:images ~removed:matched
        in
        {
          catalog;
          message = plural (List.length matched) "tuple" ^ " replaced" ^ note;
          result = None;
          bands = None;
          touched;
          deltas;
        }
      end
      else begin
        let matched = Xrel.cardinal (Algebra.select p x) in
        let updated = Storage.Update.modify ~where:p ~using:apply x in
        let catalog, touched, note =
          enforce_statement cat rel ~before:x ~after:updated
        in
        {
          catalog;
          message = plural matched "tuple" ^ " replaced" ^ note;
          result = None;
          bands = None;
          touched;
          deltas = [];
        }
      end
  | Quel.Ast.Constrain { cname; rel; spec } ->
      let name = match cname with Some n -> n | None -> auto_name rel spec in
      if Option.is_some (Storage.Catalog.constraint_def cat name) then
        errorf "a constraint named %s already exists (unconstrain it first)"
          name;
      let def = def_of_spec cat name rel spec in
      {
        catalog = Storage.Catalog.add_constraint cat def;
        message =
          Printf.sprintf "constraint %s declared (existing data verified)"
            name;
        result = None;
        bands = None;
        touched = [];
        deltas = [];
      }
  | Quel.Ast.Unconstrain { cname } ->
      if Option.is_none (Storage.Catalog.constraint_def cat cname) then
        errorf "unknown constraint %s" cname;
      {
        catalog = Storage.Catalog.drop_constraint cat cname;
        message = Printf.sprintf "constraint %s dropped" cname;
        result = None;
        bands = None;
        touched = [];
        deltas = [];
      }

let exec_string ?semantics cat src =
  exec ?semantics cat (Quel.Parser.parse_statement src)

let is_read = function
  | Quel.Ast.Retrieve _ -> true
  | Quel.Ast.Append _ | Quel.Ast.Delete _ | Quel.Ast.Replace _
  | Quel.Ast.Constrain _ | Quel.Ast.Unconstrain _ ->
      false

(* The operations that turn [cat0] into [cat1]: one non-noop change per
   touched relation, plus the constraint-DDL difference. Together they
   form the statement's single atomic journal record. *)
let ops_between cat0 cat1 touched =
  let changes =
    List.filter_map
      (fun rel ->
        let before = Storage.Catalog.relation cat0 rel
        and after = Storage.Catalog.relation cat1 rel in
        let c = Storage.Wal.change ~rel ~before ~after in
        if Storage.Wal.change_is_noop c then None
        else Some (Storage.Wal.Change c))
      touched
  in
  let defs0 = Storage.Catalog.constraints cat0
  and defs1 = Storage.Catalog.constraints cat1 in
  let line d = Constr.def_to_line d in
  let dropped =
    List.filter_map
      (fun d0 ->
        let name = Constr.name d0 in
        if List.exists (fun d1 -> String.equal (Constr.name d1) name) defs1
        then None
        else Some (Storage.Wal.Drop_constraint name))
      defs0
  in
  let added =
    List.filter_map
      (fun d1 ->
        if List.exists (fun d0 -> String.equal (line d0) (line d1)) defs0 then
          None
        else Some (Storage.Wal.Add_constraint d1))
      defs1
  in
  changes @ dropped @ added

(* ------------------------ durable mode ------------------------ *)

type durable = {
  dir : string;
  io : Storage.Io.t;
  cat : Storage.Catalog.t;
  lsn : int;
  dirty : int;  (** Journaled statements since the last checkpoint. *)
  every : int;
}

let durable_catalog d = d.cat
let durable_lsn d = d.lsn

let checkpoint d =
  Storage.Persist.save ~io:d.io ~lsn:d.lsn ~dir:d.dir d.cat;
  Storage.Wal.reset ~io:d.io ~dir:d.dir;
  { d with dirty = 0 }

let open_durable ?(io = Storage.Io.retrying Storage.Io.real)
    ?(checkpoint_every = 64) ~dir () =
  if checkpoint_every < 1 then
    Exec_error.bad_input "Dml.open_durable: checkpoint_every must be >= 1";
  let report =
    if io.Storage.Io.file_exists dir then Storage.Persist.recover ~io ~dir ()
    else begin
      (* a brand-new database: an empty, durable checkpoint *)
      Storage.Persist.save ~io ~dir Storage.Catalog.empty;
      Storage.Persist.load_report ~io ~dir ()
    end
  in
  ( {
      dir;
      io;
      cat = report.Storage.Persist.catalog;
      lsn = report.Storage.Persist.lsn;
      dirty = 0;
      every = checkpoint_every;
    },
    report )

let target_relation = function
  | Quel.Ast.Retrieve _ | Quel.Ast.Unconstrain _ -> None
  | Quel.Ast.Append { rel; _ }
  | Quel.Ast.Delete { rel; _ }
  | Quel.Ast.Replace { rel; _ }
  | Quel.Ast.Constrain { rel; _ } ->
      Some rel

(* Journal, then apply, then (sometimes) checkpoint. The journal append
   is the commit point: a crash before it loses the statement, a crash
   after it is replayed by recovery, and the checkpoint itself is
   crash-safe ({!Storage.Persist.save}), so every interruption lands on
   either the last checkpoint or the last journaled commit. The whole
   statement — its own delta, every cascade/set-null delta its
   constraints fired, and any constraint DDL — is one journal frame, so
   recovery can never land between a delete and its cascade. *)
(* The journal record of an incremental statement, straight from the
   net deltas the write path carried out — no O(n) re-diff of the
   catalogs, so the journaling cost is bounded by the delta too. *)
let ops_of_deltas deltas =
  List.filter_map
    (fun (d : Constr.delta) ->
      let wrap set = Xrel.unsafe_of_minimal (Relation.of_tuples set) in
      let c =
        {
          Storage.Wal.rel = d.Constr.d_rel;
          added = wrap d.Constr.d_added;
          removed = wrap d.Constr.d_removed;
        }
      in
      if Storage.Wal.change_is_noop c then None
      else Some (Storage.Wal.Change c))
    deltas

let exec_durable d statement =
  (* Abort-before-apply: both cancellation points sit strictly before
     the journal append (the commit point), so a governed abort leaves
     the directory exactly at the last committed state — never between
     the append and the in-memory apply. *)
  Exec.checkpoint ();
  let outcome = exec d.cat statement in
  let ops =
    match outcome.deltas with
    | [] -> ops_between d.cat outcome.catalog outcome.touched
    | deltas -> ops_of_deltas deltas
  in
  match ops with
  | [] -> (d, outcome)
  | ops ->
      Exec.checkpoint ();
      d.io.Storage.Io.note "dml:apply";
      Storage.Wal.append ~io:d.io ~dir:d.dir
        { Storage.Wal.lsn = d.lsn + 1; ops };
      d.io.Storage.Io.note "dml:journaled";
      let d =
        { d with cat = outcome.catalog; lsn = d.lsn + 1; dirty = d.dirty + 1 }
      in
      let d = if d.dirty >= d.every then checkpoint d else d in
      (d, outcome)

let exec_durable_string d src =
  exec_durable d (Quel.Parser.parse_statement src)
