(** Declarable integrity constraints under the paper's [ni] semantics,
    with incremental enforcement and referential actions.

    The paper's closing remarks say the basic integrity rules "can be
    extended and enforced in the presence of null values, without major
    problems"; this module is that extension, following the TLA+
    [MQDBConstraints] specification (SNIPPETS.md):

    - {b unique} is ni-tolerant: a tuple null on {e any} unique
      attribute collides with nothing ([UniqueOk] holds vacuously on
      [NullVal]); only two tuples {e total} on the unique attributes
      with equal values violate it.
    - {b not-null} forbids [ni] on one attribute, mirroring entity
      integrity for declared non-key attributes.
    - {b foreign keys} assert nothing when the referencing tuple is
      null on any local attribute ([FKTargetExists] on [NullVal]); a
      total reference must be x-subsumed by the target relation. On
      deletion of a referenced tuple, the declared action fires:
      [Restrict] aborts, [Cascade] deletes the referencing tuples
      (transitively — the [CascadeSet] closure), [Set_null] rewrites
      the local attributes to [ni], which must itself re-satisfy every
      not-null and primary-key rule or the whole transaction aborts.

    Enforcement ({!enforce}) is {e incremental}: it checks only the
    tuples a statement added or removed, probing the target relations
    through {!Nullrel.Subsume_index} rather than re-scanning, and
    returns the closure of referential actions as extra deltas to be
    committed inside the same transaction. *)

open Nullrel

(** {1 Declarations} *)

type action = Restrict | Cascade | Set_null

type def =
  | Unique of { name : string; rel : string; attrs : Attr.t list }
  | Not_null of { name : string; rel : string; attr : Attr.t }
  | Foreign_key of {
      name : string;
      rel : string;  (** Referencing relation. *)
      target : string;  (** Referenced relation. *)
      pairs : (Attr.t * Attr.t) list;  (** [(local, referenced)]. *)
      on_delete : action;
    }

val name : def -> string
val relations : def -> string list
(** The relations a definition involves: [[rel]], or [[rel; target]]
    for a foreign key (deduplicated for self-references). *)

val action_to_string : action -> string
val action_of_string : string -> action option
val pp_def : Format.formatter -> def -> unit

val def_to_line : def -> string
(** One tab-separated line, newline-free; the persistence and journal
    format. *)

val def_of_line : string -> def option
(** Inverse of {!def_to_line}; [None] on anything unparseable. *)

(** {1 Violations} *)

type violation =
  | Null_forbidden of { constr : string; rel : string; attr : Attr.t }
      (** A written tuple is [ni] on a not-null attribute. *)
  | Duplicate of { constr : string; rel : string; tuple : Tuple.t }
      (** A second tuple, total on the unique attributes, carries the
          same values. *)
  | Dangling of {
      constr : string;
      rel : string;
      target : string;
      tuple : Tuple.t;
    }  (** A total reference matched by no target tuple. *)
  | Restricted of {
      constr : string;
      rel : string;
      target : string;
      tuple : Tuple.t;
    }
      (** A deletion from [target] would orphan [tuple] of [rel] and
          the foreign key says [Restrict]. *)
  | Set_null_forbidden of {
      constr : string;
      rel : string;
      attr : Attr.t;
      blocker : string;  (** ["primary key"] or a constraint name. *)
    }
      (** [Set_null] would write [ni] into an attribute that a
          not-null constraint or the primary key forbids to be null. *)

exception Error of violation

val error : violation -> 'a
(** Counts the violation in the metrics registry, then raises
    {!Error}. *)

val class_name : violation -> string
(** Stable one-word class: ["not-null"], ["unique"], ["fk-dangling"],
    ["fk-restricted"], ["set-null-blocked"]. *)

val exit_code : int
(** Process exit code for constraint violations: 10, continuing the
    session layer's 7..9 range. *)

val to_string : violation -> string
val pp_violation : Format.formatter -> violation -> unit

(** {1 Enforcement} *)

type delta = {
  d_rel : string;
  d_added : Tuple.Set.t;
  d_removed : Tuple.Set.t;
}
(** One relation's change, as the tuples its minimal representation
    gained and lost (the {!Storage.Wal} delta shape). *)

type env = {
  lookup : string -> Xrel.t option;
      (** The {e post-statement} state of a relation. *)
  probe : string -> Subsume_index.t option;
      (** A subsumption index over exactly [lookup]'s value. *)
  key_of : string -> Attr.Set.t;
      (** The relation's primary key (empty when none). *)
}

val enabled : bool ref
(** Kill switch, [true] by default. When flipped off, {!enforce}
    returns [[]] without checking — the bench baseline for the
    enforcement-overhead gate. *)

val enforce : env -> def list -> delta list -> delta list
(** [enforce env defs seeds] checks the seed deltas (already reflected
    in [env]) against every constraint and computes the referential
    action closure. Added tuples are checked for not-null, ni-tolerant
    uniqueness and dangling references by index probes; removed tuples
    trigger the declared delete actions on every foreign key referencing
    their relation, to a fixpoint (a cascade can orphan further
    references). Returns the extra deltas — cascade deletions and
    set-null rewrites, in firing order — that must commit atomically
    with the seeds. Raises {!Error} on any violation; the caller must
    then abandon the whole transaction. With no definitions (or
    {!enabled} off) it returns [[]] immediately. *)

val verify : env -> def -> violation list
(** Full-scan verification that the current data satisfies one
    definition — the TLA+ [Add*Constraint] precondition, used at
    declaration time and to re-validate constraints restored from a
    stale checkpoint. An unknown relation yields no violations (there
    is nothing to violate). *)
