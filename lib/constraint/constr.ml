open Nullrel
module String_map = Map.Make (String)

(* ------------------------ declarations ------------------------ *)

type action = Restrict | Cascade | Set_null

type def =
  | Unique of { name : string; rel : string; attrs : Attr.t list }
  | Not_null of { name : string; rel : string; attr : Attr.t }
  | Foreign_key of {
      name : string;
      rel : string;
      target : string;
      pairs : (Attr.t * Attr.t) list;
      on_delete : action;
    }

let name = function
  | Unique { name; _ } | Not_null { name; _ } | Foreign_key { name; _ } -> name

let relations = function
  | Unique { rel; _ } | Not_null { rel; _ } -> [ rel ]
  | Foreign_key { rel; target; _ } ->
      if String.equal rel target then [ rel ] else [ rel; target ]

let action_to_string = function
  | Restrict -> "restrict"
  | Cascade -> "cascade"
  | Set_null -> "setnull"

let action_of_string = function
  | "restrict" -> Some Restrict
  | "cascade" -> Some Cascade
  | "setnull" -> Some Set_null
  | _ -> None

let pp_def ppf = function
  | Unique { name; rel; attrs } ->
      Format.fprintf ppf "%s: unique %s (%s)" name rel
        (String.concat ", " (List.map Attr.name attrs))
  | Not_null { name; rel; attr } ->
      Format.fprintf ppf "%s: notnull %s (%s)" name rel (Attr.name attr)
  | Foreign_key { name; rel; target; pairs; on_delete } ->
      Format.fprintf ppf "%s: fk %s (%s) to %s (%s) on delete %s" name rel
        (String.concat ", " (List.map (fun (l, _) -> Attr.name l) pairs))
        target
        (String.concat ", " (List.map (fun (_, r) -> Attr.name r) pairs))
        (action_to_string on_delete)

let def_to_line = function
  | Unique { name; rel; attrs } ->
      String.concat "\t" ("unique" :: name :: rel :: List.map Attr.name attrs)
  | Not_null { name; rel; attr } ->
      String.concat "\t" [ "notnull"; name; rel; Attr.name attr ]
  | Foreign_key { name; rel; target; pairs; on_delete } ->
      String.concat "\t"
        ("fk" :: name :: rel :: target
        :: action_to_string on_delete
        :: List.concat_map
             (fun (l, r) -> [ Attr.name l; Attr.name r ])
             pairs)

let def_of_line line =
  let rec pair_up = function
    | [] -> Some []
    | l :: r :: rest ->
        Option.map
          (fun pairs -> (Attr.make l, Attr.make r) :: pairs)
          (pair_up rest)
    | [ _ ] -> None
  in
  match String.split_on_char '\t' line with
  | "unique" :: name :: rel :: (_ :: _ as attrs) ->
      Some (Unique { name; rel; attrs = List.map Attr.make attrs })
  | [ "notnull"; name; rel; attr ] ->
      Some (Not_null { name; rel; attr = Attr.make attr })
  | "fk" :: name :: rel :: target :: action :: (_ :: _ as rest) -> (
      match (action_of_string action, pair_up rest) with
      | Some on_delete, Some pairs ->
          Some (Foreign_key { name; rel; target; pairs; on_delete })
      | _ -> None)
  | _ -> None

(* ------------------------- violations ------------------------- *)

type violation =
  | Null_forbidden of { constr : string; rel : string; attr : Attr.t }
  | Duplicate of { constr : string; rel : string; tuple : Tuple.t }
  | Dangling of {
      constr : string;
      rel : string;
      target : string;
      tuple : Tuple.t;
    }
  | Restricted of {
      constr : string;
      rel : string;
      target : string;
      tuple : Tuple.t;
    }
  | Set_null_forbidden of {
      constr : string;
      rel : string;
      attr : Attr.t;
      blocker : string;
    }

exception Error of violation

let class_name = function
  | Null_forbidden _ -> "not-null"
  | Duplicate _ -> "unique"
  | Dangling _ -> "fk-dangling"
  | Restricted _ -> "fk-restricted"
  | Set_null_forbidden _ -> "set-null-blocked"

let exit_code = 10

let to_string = function
  | Null_forbidden { constr; rel; attr } ->
      Printf.sprintf "constraint %s: %s.%s may not be null" constr rel
        (Attr.name attr)
  | Duplicate { constr; rel; tuple } ->
      Printf.sprintf "constraint %s: duplicate unique value in %s at %s"
        constr rel
        (Pp.to_string Tuple.pp tuple)
  | Dangling { constr; rel; target; tuple } ->
      Printf.sprintf
        "constraint %s: %s tuple %s references no tuple of %s" constr rel
        (Pp.to_string Tuple.pp tuple)
        target
  | Restricted { constr; rel; target; tuple } ->
      Printf.sprintf
        "constraint %s: deletion from %s restricted — %s tuple %s still \
         references it"
        constr target rel
        (Pp.to_string Tuple.pp tuple)
  | Set_null_forbidden { constr; rel; attr; blocker } ->
      Printf.sprintf
        "constraint %s: set-null would write ni into %s.%s, forbidden by %s"
        constr rel (Attr.name attr) blocker

let pp_violation ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------- metrics ---------------------------- *)

let m_checks =
  Obs.Metrics.counter ~help:"Constraint enforcement passes over write deltas"
    "nullrel_constraint_checks_total"

let m_cascade =
  Obs.Metrics.counter
    ~help:"Tuples deleted by foreign-key cascade actions"
    "nullrel_constraint_cascade_tuples_total"

let m_set_null =
  Obs.Metrics.counter
    ~help:"Tuples rewritten to ni by foreign-key set-null actions"
    "nullrel_constraint_set_null_tuples_total"

let m_violations =
  let make cls =
    ( cls,
      Obs.Metrics.counter
        ~labels:[ ("class", cls) ]
        ~help:"Constraint violations that aborted a transaction, by class"
        "nullrel_constraint_violations_total" )
  in
  List.map make
    [ "not-null"; "unique"; "fk-dangling"; "fk-restricted"; "set-null-blocked" ]

let error v =
  if Obs.Metrics.is_enabled () then
    Obs.Metrics.inc (List.assoc (class_name v) m_violations);
  raise (Error v)

(* ------------------------ enforcement ------------------------- *)

type delta = {
  d_rel : string;
  d_added : Tuple.Set.t;
  d_removed : Tuple.Set.t;
}

type env = {
  lookup : string -> Xrel.t option;
  probe : string -> Subsume_index.t option;
  key_of : string -> Attr.Set.t;
}

let enabled = ref true

(* A total reference of [r] through the fk pairs, as a tuple over the
   {e referenced} attributes — or [None] when any local attribute is
   null (the tuple asserts nothing, per Section 8). *)
let reference_of pairs r =
  List.fold_left
    (fun acc (local, referenced) ->
      match acc with
      | None -> None
      | Some t -> (
          match Tuple.get r local with
          | Value.Null -> None
          | v -> Some (Tuple.set t referenced v)))
    (Some Tuple.empty) pairs

(* Mutable working state: the post-statement relations, overlaid with
   the referential actions fired so far. Indexes are lazy and shared —
   the env's own index is reused untouched until an action actually
   mutates the relation. *)
type rel_state = { rs_x : Xrel.t; rs_idx : Subsume_index.t Lazy.t }

type state = {
  env : env;
  defs : def list;
  mutable overlay : rel_state String_map.t;
}

let state_of st rel =
  match String_map.find_opt rel st.overlay with
  | Some rs -> Some rs
  | None -> (
      match st.env.lookup rel with
      | None -> None
      | Some x ->
          let rs =
            {
              rs_x = x;
              rs_idx =
                lazy
                  (match st.env.probe rel with
                  | Some idx -> idx
                  | None -> Subsume_index.build (Xrel.rep x));
            }
          in
          st.overlay <- String_map.add rel rs st.overlay;
          Some rs)

let apply_overlay st d =
  match state_of st d.d_rel with
  | None -> ()
  | Some rs ->
      let tuples = Relation.tuples (Xrel.rep rs.rs_x) in
      let tuples = Tuple.Set.diff tuples d.d_removed in
      let tuples = Tuple.Set.union tuples d.d_added in
      let x = Xrel.of_tuples tuples in
      st.overlay <-
        String_map.add d.d_rel
          { rs_x = x; rs_idx = lazy (Subsume_index.build (Xrel.rep x)) }
          st.overlay

let target_holds st target reference =
  match state_of st target with
  | None -> false
  | Some rs -> Subsume_index.subsuming_exists (Lazy.force rs.rs_idx) reference

(* Checks on tuples a delta added: not-null, ni-tolerant uniqueness,
   and outgoing references — all by index probe, never a scan. *)
let added_checks st d =
  if not (Tuple.Set.is_empty d.d_added) then
    List.iter
      (function
        | Not_null { name; rel; attr } when String.equal rel d.d_rel ->
            Tuple.Set.iter
              (fun t ->
                if Value.is_null (Tuple.get t attr) then
                  error (Null_forbidden { constr = name; rel; attr }))
              d.d_added
        | Unique { name; rel; attrs } when String.equal rel d.d_rel -> (
            match state_of st rel with
            | None -> ()
            | Some rs ->
                let aset = Attr.Set.of_list attrs in
                let rep = Relation.tuples (Xrel.rep rs.rs_x) in
                Tuple.Set.iter
                  (fun t ->
                    (* A tuple null on any unique attribute collides
                       with nothing; one absorbed by minimization added
                       no information. *)
                    if Tuple.is_total_on aset t && Tuple.Set.mem t rep then
                      let u = Tuple.restrict t aset in
                      if Subsume_index.count_at (Lazy.force rs.rs_idx) u >= 2
                      then error (Duplicate { constr = name; rel; tuple = t }))
                  d.d_added)
        | Foreign_key { name; rel; target; pairs; _ }
          when String.equal rel d.d_rel ->
            Tuple.Set.iter
              (fun t ->
                match reference_of pairs t with
                | None -> () (* partial reference asserts nothing *)
                | Some reference ->
                    if not (target_holds st target reference) then
                      error
                        (Dangling { constr = name; rel; target; tuple = t }))
              d.d_added
        | Unique _ | Not_null _ | Foreign_key _ -> ())
      st.defs

(* The declared delete action, fired on the referencing tuples a
   removal left dangling. *)
let removal_checks st d ~emit =
  if not (Tuple.Set.is_empty d.d_removed) then
    List.iter
      (function
        | Foreign_key { name; rel; target; pairs; on_delete }
          when String.equal target d.d_rel -> (
            match state_of st rel with
            | None -> ()
            | Some rs ->
                let dangling =
                  List.filter
                    (fun r ->
                      match reference_of pairs r with
                      | None -> false
                      | Some reference ->
                          not (target_holds st target reference))
                    (Xrel.to_list rs.rs_x)
                in
                if dangling <> [] then begin
                  match on_delete with
                  | Restrict ->
                      error
                        (Restricted
                           {
                             constr = name;
                             rel;
                             target;
                             tuple = List.hd dangling;
                           })
                  | Cascade ->
                      Obs.Metrics.add m_cascade (List.length dangling);
                      emit
                        {
                          d_rel = rel;
                          d_added = Tuple.Set.empty;
                          d_removed = Tuple.Set.of_list dangling;
                        }
                  | Set_null ->
                      let locals = List.map fst pairs in
                      List.iter
                        (fun local ->
                          if Attr.Set.mem local (st.env.key_of rel) then
                            error
                              (Set_null_forbidden
                                 {
                                   constr = name;
                                   rel;
                                   attr = local;
                                   blocker = "primary key";
                                 });
                          List.iter
                            (function
                              | Not_null { name = nn; rel = r; attr }
                                when String.equal r rel
                                     && Attr.equal attr local ->
                                  error
                                    (Set_null_forbidden
                                       {
                                         constr = name;
                                         rel;
                                         attr = local;
                                         blocker = "constraint " ^ nn;
                                       })
                              | _ -> ())
                            st.defs)
                        locals;
                      let local_set = Attr.Set.of_list locals in
                      Obs.Metrics.add m_set_null (List.length dangling);
                      emit
                        {
                          d_rel = rel;
                          d_added =
                            Tuple.Set.of_list
                              (List.map
                                 (fun r -> Tuple.remove r local_set)
                                 dangling);
                          d_removed = Tuple.Set.of_list dangling;
                        }
                end)
        | Unique _ | Not_null _ | Foreign_key _ -> ())
      st.defs

let enforce env defs seeds =
  if (not !enabled) || defs = [] || seeds = [] then []
  else begin
    Obs.Metrics.inc m_checks;
    let st = { env; defs; overlay = String_map.empty } in
    let extras = ref [] in
    let queue = Queue.create () in
    List.iter (fun d -> Queue.add d queue) seeds;
    let emit d =
      (* Referential actions apply to the working state immediately, so
         every later probe sees them; the seeds are already reflected
         in [env] and are not re-applied. *)
      apply_overlay st d;
      extras := d :: !extras;
      Queue.add d queue
    in
    (* Terminates: every emitted delta either strictly removes tuples or
       replaces them by strictly less informative ones, so the total
       information content strictly decreases. *)
    while not (Queue.is_empty queue) do
      let d = Queue.pop queue in
      added_checks st d;
      removal_checks st d ~emit
    done;
    List.rev !extras
  end

(* ---------------------- full verification --------------------- *)

let verify env def =
  match def with
  | Not_null { name; rel; attr } -> (
      match env.lookup rel with
      | None -> []
      | Some x ->
          List.filter_map
            (fun t ->
              if Value.is_null (Tuple.get t attr) then
                Some (Null_forbidden { constr = name; rel; attr })
              else None)
            (Xrel.to_list x))
  | Unique { name; rel; attrs } -> (
      match env.lookup rel with
      | None -> []
      | Some x ->
          let aset = Attr.Set.of_list attrs in
          let idx =
            match env.probe rel with
            | Some idx -> idx
            | None -> Subsume_index.build (Xrel.rep x)
          in
          List.filter_map
            (fun t ->
              if
                Tuple.is_total_on aset t
                && Subsume_index.count_at idx (Tuple.restrict t aset) >= 2
              then Some (Duplicate { constr = name; rel; tuple = t })
              else None)
            (Xrel.to_list x))
  | Foreign_key { name; rel; target; pairs; _ } -> (
      match env.lookup rel with
      | None -> []
      | Some x ->
          let target_idx =
            match env.probe target with
            | Some idx -> Some idx
            | None ->
                Option.map
                  (fun tx -> Subsume_index.build (Xrel.rep tx))
                  (env.lookup target)
          in
          List.filter_map
            (fun t ->
              match reference_of pairs t with
              | None -> None
              | Some reference ->
                  let ok =
                    match target_idx with
                    | None -> false
                    | Some idx -> Subsume_index.subsuming_exists idx reference
                  in
                  if ok then None
                  else Some (Dangling { constr = name; rel; target; tuple = t }))
            (Xrel.to_list x))
