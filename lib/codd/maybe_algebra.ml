open Nullrel

let eq3 v w = Predicate.apply_comparison Predicate.Eq v w

let tuple_eq3 ~over t r =
  Attr.Set.fold
    (fun a acc -> Tvl.and_ acc (eq3 (Tuple.get t a) (Tuple.get r a)))
    over Tvl.True

let member3 ~over t rel =
  Relation.fold (fun r acc -> Tvl.or_ acc (tuple_eq3 ~over t r)) rel Tvl.False

let member_sure ~over t rel = Tvl.equal (member3 ~over t rel) Tvl.True
let member_possible ~over t rel = not (Tvl.equal (member3 ~over t rel) Tvl.False)

(* Selection goes through the dialect seam rather than re-encoding the
   TRUE/MAYBE split: the Codd_maybe capability record owns the
   admission rule (TRUE -> sure band, ni -> maybe band), so this module
   and [Quel.Eval] under the codd dialect can never disagree about
   which rows are MAYBE. *)
let codd = Semantics.of_dialect Semantics.Codd_maybe

let select_band band p rel =
  Relation.filter
    (fun r -> codd.Semantics.admit (Semantics.eval codd p r) = band)
    rel

let select_true p rel = select_band Semantics.Sure p rel
let select_maybe p rel = select_band Semantics.Maybe p rel

let project x rel = Relation.map (fun r -> Tuple.restrict r x) rel

let product r1 r2 =
  Relation.fold
    (fun t1 acc ->
      Relation.fold
        (fun t2 acc ->
          match Tuple.join t1 t2 with
          | Some joined -> Relation.add joined acc
          | None -> acc)
        r2 acc)
    r1 Relation.empty

let join_true a cmp b r1 r2 =
  select_true (Predicate.Cmp_attrs (a, cmp, b)) (product r1 r2)

let join_maybe a cmp b r1 r2 =
  select_maybe (Predicate.Cmp_attrs (a, cmp, b)) (product r1 r2)

type set_expr =
  | Rel of Relation.t
  | Union of set_expr * set_expr
  | Inter of set_expr * set_expr
  | Diff of set_expr * set_expr

(* All substituted (total) values of a set expression: every base
   occurrence is completed independently, then the set operators apply to
   the resulting total relations. *)
let rec substitutions ~domains ~scope expr : Tuple.Set.t Seq.t =
  match expr with
  | Rel r ->
      Seq.map Tuple.Set.of_list
        (Subst.relation_substitutions ~domains ~over:scope
           (Relation.to_list r))
  | Union (e1, e2) -> combine ~domains ~scope Tuple.Set.union e1 e2
  | Inter (e1, e2) -> combine ~domains ~scope Tuple.Set.inter e1 e2
  | Diff (e1, e2) -> combine ~domains ~scope Tuple.Set.diff e1 e2

and combine ~domains ~scope op e1 e2 =
  Seq.concat_map
    (fun s1 -> Seq.map (fun s2 -> op s1 s2) (substitutions ~domains ~scope e2))
    (substitutions ~domains ~scope e1)

let quantify_pairs holds pairs =
  let rec go seen_true seen_false seq =
    if seen_true && seen_false then Tvl.Ni
    else
      match Seq.uncons seq with
      | None -> if seen_false then Tvl.False else Tvl.True
      | Some ((s1, s2), rest) ->
          if holds s1 s2 then go true seen_false rest
          else go seen_true true rest
  in
  go false false pairs

let pairs_of ~domains ~scope e1 e2 =
  Seq.concat_map
    (fun s1 -> Seq.map (fun s2 -> (s1, s2)) (substitutions ~domains ~scope e2))
    (substitutions ~domains ~scope e1)

let contains3 ~domains ~scope e1 e2 =
  quantify_pairs
    (fun s1 s2 -> Tuple.Set.subset s2 s1)
    (pairs_of ~domains ~scope e1 e2)

let equal3 ~domains ~scope e1 e2 =
  quantify_pairs Tuple.Set.equal (pairs_of ~domains ~scope e1 e2)

(* Division. The divisor tuples live on attributes disjoint from [y], so
   the combination [y \/ s] always exists. *)
let divisor_candidates ~y rel =
  Relation.fold
    (fun r acc ->
      if Tuple.is_total_on y r then Relation.add (Tuple.restrict r y) acc
      else acc)
    rel Relation.empty

let combined y_value s =
  match Tuple.join y_value s with
  | Some t -> t
  | None ->
      Exec_error.bad_input
        "Maybe_algebra.divide: divisor overlaps quotient attrs"

let divide_with ~member ~y dividend divisor =
  let over =
    Attr.Set.union y
      (Relation.fold
         (fun s acc -> Attr.Set.union (Tuple.attrs s) acc)
         divisor Attr.Set.empty)
  in
  Relation.filter
    (fun cand ->
      Relation.fold
        (fun s acc -> acc && member ~over (combined cand s) dividend)
        divisor true)
    (divisor_candidates ~y dividend)

let divide_true ~y dividend divisor =
  divide_with ~member:member_sure ~y dividend divisor

let divide_maybe ~y dividend divisor =
  let possible = divide_with ~member:member_possible ~y dividend divisor in
  let sure = divide_true ~y dividend divisor in
  Relation.filter (fun r -> not (Relation.mem r sure)) possible
