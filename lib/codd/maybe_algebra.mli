(** Codd's three-valued (TRUE/MAYBE) treatment of nulls — the baseline
    the paper argues against (Sections 1, 5, 6).

    Codd \[5\] extends the relational algebra with a three-valued logic
    whose third value is MAYBE (represented here by [Tvl.Ni] — the truth
    tables are the same, the interpretation differs). Select, join and
    divide come in a TRUE version and a MAYBE version; set comparisons
    are evaluated with the null-substitution principle of {!Subst}.

    Relations here are plain {!Nullrel.Relation} representations: Codd's
    model has no information-wise equivalence, the null is treated as an
    ordinary (syntactic) value by the set operations, and no minimization
    ever happens. *)

open Nullrel

val eq3 : Value.t -> Value.t -> Tvl.t
(** Codd equality: MAYBE if either value is null. *)

val tuple_eq3 : over:Attr.Set.t -> Tuple.t -> Tuple.t -> Tvl.t
(** Conjunction of {!eq3} over the attributes [over]. *)

val member3 : over:Attr.Set.t -> Tuple.t -> Relation.t -> Tvl.t
(** Three-valued membership: the disjunction over the relation's tuples
    of {!tuple_eq3}. *)

val member_sure : over:Attr.Set.t -> Tuple.t -> Relation.t -> bool
(** [member3 = True]. *)

val member_possible : over:Attr.Set.t -> Tuple.t -> Relation.t -> bool
(** [member3 <> False] — the tuple cannot be ruled out. *)

val select_true : Predicate.t -> Relation.t -> Relation.t
(** The TRUE version of selection — identical to the paper's own
    lower-bound selection (Section 5 notes the equivalence). Routed
    through the [Codd_maybe] {!Nullrel.Semantics} admission rule, so
    the band split here and in [Quel.Eval] share one definition. *)

val select_maybe : Predicate.t -> Relation.t -> Relation.t
(** The MAYBE version: the tuples whose qualification evaluates to
    MAYBE (the [Codd_maybe] dialect's maybe band). Low selectivity at
    high cost is the practical complaint recorded in Section 1. *)

val project : Attr.Set.t -> Relation.t -> Relation.t
(** Plain projection with syntactic duplicate removal (no
    minimization). *)

val product : Relation.t -> Relation.t -> Relation.t
(** Syntactic Cartesian product (operand scopes must not conflict;
    conflicting pairs are dropped, nulls ride along as values). *)

val join_true :
  Attr.t -> Predicate.comparison -> Attr.t -> Relation.t -> Relation.t ->
  Relation.t
(** Codd's TRUE theta-join: the product rows whose comparison evaluates
    to TRUE. Coincides with the paper's own theta-join on
    representations (Section 5 notes the equivalence of the TRUE
    strategy). *)

val join_maybe :
  Attr.t -> Predicate.comparison -> Attr.t -> Relation.t -> Relation.t ->
  Relation.t
(** Codd's MAYBE theta-join: the product rows whose comparison evaluates
    to MAYBE — the low-selectivity, high-cost operator Section 1
    complains about. Disjoint from {!join_true}. *)

(** {1 Set comparisons by the null-substitution principle} *)

type set_expr =
  | Rel of Relation.t  (** A base relation occurrence. *)
  | Union of set_expr * set_expr
  | Inter of set_expr * set_expr
  | Diff of set_expr * set_expr

(** Each textual occurrence of a base relation is substituted
    independently, as in the paper's analysis of [PS'' >= PS'] where "the
    [omega] in PS' and the [omega] in PS''" are replaced separately. *)

val contains3 :
  domains:(Attr.t -> Domain.t) ->
  scope:Attr.Set.t ->
  set_expr ->
  set_expr ->
  Tvl.t
(** [contains3 e1 e2] evaluates [e1 >= e2] (set containment) under every
    substitution: TRUE if it always holds, FALSE if it never does, MAYBE
    otherwise. *)

val equal3 :
  domains:(Attr.t -> Domain.t) ->
  scope:Attr.Set.t ->
  set_expr ->
  set_expr ->
  Tvl.t
(** Set equality under the substitution principle. Note: with the two
    occurrences substituted independently even [PS' = PS'] is MAYBE — the
    paper's "even more surprisingly" remark. *)

(** {1 TRUE / MAYBE division (Section 6)} *)

val divide_true : y:Attr.Set.t -> Relation.t -> Relation.t -> Relation.t
(** Codd's TRUE quotient: the Y-values [y] (from the Y-total dividend
    tuples) such that for {e every} divisor tuple [s] — nulls included —
    the combined tuple [y \/ s] is {e surely} in the dividend. On the
    paper's PS example this returns the empty answer A1. *)

val divide_maybe : y:Attr.Set.t -> Relation.t -> Relation.t -> Relation.t
(** Codd's MAYBE quotient: the [y] such that every [y \/ s] is {e
    possibly} in the dividend, excluding those surely qualifying. On the
    paper's PS example this returns A2 = [{s1, s2, s3}]. *)
