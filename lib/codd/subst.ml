open Nullrel

(* Null slots of a tuple within [over]: attributes to fill. *)
let null_slots ~over r =
  Attr.Set.elements
    (Attr.Set.filter (fun a -> Value.is_null (Tuple.get r a)) over)

let rec fill ~domains r = function
  | [] -> Seq.return r
  | a :: rest ->
      let values = Domain.members (domains a) in
      Seq.concat_map
        (fun v ->
          Exec.tick ();
          fill ~domains (Tuple.set r a v) rest)
        (List.to_seq values)

let tuple_substitutions ~domains ~over r =
  fill ~domains r (null_slots ~over r)

let relation_substitutions ~domains ~over tuples =
  List.fold_left
    (fun acc r ->
      Seq.concat_map
        (fun prefix ->
          Seq.map
            (fun r' -> r' :: prefix)
            (tuple_substitutions ~domains ~over r))
        acc)
    (Seq.return []) (List.rev tuples)

let count_substitutions ~domains ~over tuples =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc a ->
          match Domain.cardinal (domains a) with
          | Some n -> acc * n
          | None -> raise (Domain.Infinite (Attr.name a)))
        acc (null_slots ~over r))
    1 tuples

let quantify holds substitutions =
  let rec go seen_true seen_false seq =
    if seen_true && seen_false then Tvl.Ni
    else
      match Seq.uncons seq with
      | None ->
          if seen_true && seen_false then Tvl.Ni
          else if seen_false then Tvl.False
          else Tvl.True
      | Some (s, rest) ->
          if holds s then go true seen_false rest else go seen_true true rest
  in
  go false false substitutions
