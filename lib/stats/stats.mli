(** Null-aware relation statistics for cost-based planning.

    Under the paper's Table III semantics a comparison that touches a
    null evaluates to [ni], and only TRUE tuples qualify — so the
    fraction of nulls in a column directly shrinks the selectivity of
    every predicate and join over it. This module collects exactly the
    summaries that estimation needs: per-relation row counts and, per
    attribute, the null count, an exact distinct count, and min/max
    for integer-valued columns (the interpolation domain for range
    predicates).

    Collection is one governed scan ({!Nullrel.Exec.tick} per tuple),
    dispatched through {!Nullrel.Kernel.fold_chunks} so a large
    relation is analyzed in parallel chunks over the domain pool.
    Results are stored in [Storage.Catalog] stamped against a data
    version and persisted alongside checkpoints; this module itself
    is storage-agnostic (it sits below both [plan] and [storage] in
    the library graph, which cannot see each other). *)

open Nullrel

type column = {
  nulls : int;  (** Tuples with no information on this attribute. *)
  distinct : int;  (** Exact count of distinct non-null values seen. *)
  min_int : int option;  (** Smallest integer value, when any. *)
  max_int : int option;
}

type table = { rows : int; columns : (Attr.t * column) list }

val collect : ?strategy:Kernel.strategy -> attrs:Attr.t list -> Xrel.t -> table
(** One pass over the minimal representation. [attrs] fixes the
    columns summarized (normally the schema universe); attributes a
    tuple does not bind count as nulls. Ticks the ambient governor
    once per tuple and honours the usual {!Nullrel.Kernel.strategy}
    dispatch ([Auto] fans out from
    {!Nullrel.Kernel.parallel_cutover} rows). *)

val column : table -> Attr.t -> column option
val null_fraction : table -> column -> float
(** [nulls / rows] (0 on an empty relation). *)

(** {1 Serialization}

    The on-disk [STATS] format: line-oriented and tab-separated like
    the schema and manifest formats. Each entry is stamped with the
    CRC of the data file it was collected against, so a loader
    attaches stats only when the relation is bit-for-bit the one that
    was analyzed. *)

exception Corrupt of string

val tables_to_string : (string * string * table) list -> string
(** [(name, data_crc_hex, table)] entries to the STATS body. *)

val tables_of_string : string -> (string * string * table) list
(** Parses a STATS body. Raises {!Corrupt} on malformed input. *)

(** {1 Observability}

    Counters under [nullrel_stats_lookups_total{outcome=...}] — the
    planner's statistics source reports each base-relation lookup as a
    hit (fresh stats used), a miss (never analyzed) or stale
    (invalidated by a mutation since collection). *)

val count_hit : unit -> unit
val count_miss : unit -> unit
val count_stale : unit -> unit

val pp : Format.formatter -> table -> unit
val pp_column : Format.formatter -> Attr.t * column -> unit

val equal : table -> table -> bool
