open Nullrel

type column = {
  nulls : int;
  distinct : int;
  min_int : int option;
  max_int : int option;
}

type table = { rows : int; columns : (Attr.t * column) list }

(* ------------------------- observability ---------------------- *)

let lookup_counter =
  let tbl = Hashtbl.create 4 in
  fun outcome ->
    match Hashtbl.find_opt tbl outcome with
    | Some c -> c
    | None ->
        let c =
          Obs.Metrics.counter
            ~labels:[ ("outcome", outcome) ]
            ~help:"Planner statistics lookups by outcome"
            "nullrel_stats_lookups_total"
        in
        Hashtbl.add tbl outcome c;
        c

let count_hit () = Obs.Metrics.inc (lookup_counter "hit")
let count_miss () = Obs.Metrics.inc (lookup_counter "miss")
let count_stale () = Obs.Metrics.inc (lookup_counter "stale")

let m_analyzed =
  Obs.Metrics.counter ~help:"Relations analyzed by the statistics collector"
    "nullrel_stats_analyze_total"

let m_analyzed_rows =
  Obs.Metrics.counter ~help:"Tuples scanned by the statistics collector"
    "nullrel_stats_analyze_rows_total"

(* --------------------------- collection ----------------------- *)

(* Per-chunk accumulator for one column. Distinct counting is exact
   (a set of seen values) — fine at catalog scale, and chunk sets
   merge by union so the parallel fold computes the same answer. *)
module Value_set = Set.Make (Value)

type col_acc = {
  a_nulls : int;
  a_seen : Value_set.t;
  a_min : int option;
  a_max : int option;
}

let empty_col = { a_nulls = 0; a_seen = Value_set.empty; a_min = None; a_max = None }

let observe_value acc = function
  | Value.Null -> { acc with a_nulls = acc.a_nulls + 1 }
  | Value.Int n ->
      {
        acc with
        a_seen = Value_set.add (Value.Int n) acc.a_seen;
        a_min = Some (match acc.a_min with None -> n | Some m -> min m n);
        a_max = Some (match acc.a_max with None -> n | Some m -> max m n);
      }
  | v -> { acc with a_seen = Value_set.add v acc.a_seen }

let merge_col c1 c2 =
  let opt f a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (f a b)
  in
  {
    a_nulls = c1.a_nulls + c2.a_nulls;
    a_seen = Value_set.union c1.a_seen c2.a_seen;
    a_min = opt min c1.a_min c2.a_min;
    a_max = opt max c1.a_max c2.a_max;
  }

(* One governed pass over the minimal representation: row count plus a
   per-attribute summary, Kernel-dispatched so a large relation is
   chunked over the domain pool. *)
let collect ?strategy ~attrs x =
  let attrs = Array.of_list attrs in
  let arr = Array.of_list (Xrel.to_list x) in
  let chunk ~lo ~hi =
    let cols = Array.make (Array.length attrs) empty_col in
    for j = lo to hi - 1 do
      let t = arr.(j) in
      Array.iteri
        (fun k a -> cols.(k) <- observe_value cols.(k) (Tuple.get t a))
        attrs
    done;
    (hi - lo, cols)
  in
  let combine (n1, c1) (n2, c2) =
    (n1 + n2, Array.map2 merge_col c1 c2)
  in
  let rows, cols =
    Kernel.fold_chunks ?strategy arr ~chunk ~combine
      ~init:(0, Array.map (fun _ -> empty_col) attrs)
  in
  Obs.Metrics.inc m_analyzed;
  Obs.Metrics.add m_analyzed_rows rows;
  {
    rows;
    columns =
      Array.to_list
        (Array.map2
           (fun a acc ->
             ( a,
               {
                 nulls = acc.a_nulls;
                 distinct = Value_set.cardinal acc.a_seen;
                 min_int = acc.a_min;
                 max_int = acc.a_max;
               } ))
           attrs cols);
  }

let column t a =
  List.find_map
    (fun (a', c) -> if Attr.equal a a' then Some c else None)
    t.columns

let null_fraction t c =
  if t.rows = 0 then 0. else float c.nulls /. float t.rows

(* ------------------------- serialization ---------------------- *)

(* Line-oriented, tab-separated, in the family of the schema and
   manifest formats. One [table] block per relation:
   {v
   table <TAB> NAME <TAB> ROWS <TAB> DATA-CRC-HEX
   column <TAB> ATTR <TAB> NULLS <TAB> DISTINCT [<TAB> MIN <TAB> MAX]
   v}
   The DATA-CRC stamps the exact data file the summary was collected
   against; a loader attaches the stats only when the CRC still
   matches, so a torn STATS file or a newer checkpoint silently yields
   no stats rather than wrong ones. *)

exception Corrupt of string

let errorf fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let table_to_lines name ~data_crc_hex t =
  Printf.sprintf "table\t%s\t%d\t%s" name t.rows data_crc_hex
  :: List.map
       (fun (a, c) ->
         let base =
           Printf.sprintf "column\t%s\t%d\t%d" (Attr.name a) c.nulls c.distinct
         in
         match (c.min_int, c.max_int) with
         | Some lo, Some hi -> Printf.sprintf "%s\t%d\t%d" base lo hi
         | _ -> base)
       t.columns

let tables_to_string entries =
  String.concat ""
    (List.concat_map
       (fun (name, data_crc_hex, t) ->
         List.map (fun l -> l ^ "\n") (table_to_lines name ~data_crc_hex t))
       entries)

let tables_of_string text =
  let int_field what s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> errorf "bad %s %S" what s
  in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let flush acc = function
    | None -> acc
    | Some (name, crc, rows, cols) ->
        (name, crc, { rows; columns = List.rev cols }) :: acc
  in
  let acc, current =
    List.fold_left
      (fun (acc, current) line ->
        match String.split_on_char '\t' line with
        | [ "table"; name; rows; crc ] ->
            (flush acc current, Some (name, crc, int_field "row count" rows, []))
        | "column" :: attr :: nulls :: distinct :: rest -> (
            let min_int, max_int =
              match rest with
              | [] -> (None, None)
              | [ lo; hi ] ->
                  (Some (int_field "min" lo), Some (int_field "max" hi))
              | _ -> errorf "bad column line: %s" line
            in
            let col =
              {
                nulls = int_field "null count" nulls;
                distinct = int_field "distinct count" distinct;
                min_int;
                max_int;
              }
            in
            match current with
            | None -> errorf "column line before any table line"
            | Some (name, crc, rows, cols) ->
                (acc, Some (name, crc, rows, (Attr.make attr, col) :: cols)))
        | _ -> errorf "unparseable stats line: %s" line)
      ([], None) lines
  in
  List.rev (flush acc current)

(* ---------------------------- display ------------------------- *)

let pp_column ppf (a, c) =
  let range =
    match (c.min_int, c.max_int) with
    | Some lo, Some hi -> Printf.sprintf "  %d..%d" lo hi
    | _ -> ""
  in
  Format.fprintf ppf "%s: %d distinct, %d null%s%s" (Attr.name a) c.distinct
    c.nulls
    (if c.nulls = 1 then "" else "s")
    range

let pp ppf t =
  Format.fprintf ppf "%d rows" t.rows;
  List.iter (fun col -> Format.fprintf ppf "@\n  %a" pp_column col) t.columns

let equal_column c1 c2 =
  c1.nulls = c2.nulls && c1.distinct = c2.distinct
  && c1.min_int = c2.min_int && c1.max_int = c2.max_int

let equal t1 t2 =
  t1.rows = t2.rows
  && List.length t1.columns = List.length t2.columns
  && List.for_all2
       (fun (a1, c1) (a2, c2) -> Attr.equal a1 a2 && equal_column c1 c2)
       t1.columns t2.columns
